type event = Phase_changed of int | Decided of { value : int; phase : int }

type stats = {
  mutable accepted : int;
  mutable rejected_auth : int;
  mutable duplicates : int;
  mutable pending_peak : int;
}

type behavior = Correct | Attacker | Byzantine of Strategy.t

(* Everything the emitted broadcast of a Correct/Attacker machine is a
   function of. While the key is unchanged, re-emitting rebuilds the
   exact same envelope — so it is memoized instead (skipping the
   re-sign and the justification rebuild). Byzantine strategies draw
   from the rng and are never memoized. *)
type emit_key = {
  ek_phase : int;
  ek_value : int;
  ek_origin : int;
  ek_status : int;
  ek_vset_version : int;
  ek_dq_phase : int;  (* -1 when none *)
}

let emit_key_equal a b =
  a.ek_phase = b.ek_phase && a.ek_value = b.ek_value && a.ek_origin = b.ek_origin
  && a.ek_status = b.ek_status && a.ek_vset_version = b.ek_vset_version
  && a.ek_dq_phase = b.ek_dq_phase

type t = {
  cfg : Proto.config;
  keyring : Keyring.t;
  rng : Util.Rng.t;
  behavior : behavior;
  mutable phase_i : int;
  mutable v_i : Proto.value;
  mutable origin_i : Proto.origin;
  mutable status_i : Proto.status;
  v : Vset.t;
  pending : (int * int, Message.t list) Hashtbl.t;
  mutable pending_count : int;
  mutable decision : int option;
  mutable decision_phase : int option;
  mutable decided_quorum_phase : int option;
  mutable last_broadcast : (int * Proto.value * Proto.status) option;
  decided_claims : (int, int) Hashtbl.t;  (* sender -> claimed decided value *)
  stats : stats;
  (* local-coin draws so far: together with the creation seed this pins
     the rng position, making {!fingerprint} capture the machine's full
     future behavior without serializing generator internals *)
  mutable coin_flips : int;
  (* emitted-broadcast memos, one per justification flavor (the stuck
     rebroadcast alternates justified/plain, so a single slot would
     thrash) *)
  mutable emit_memo_plain : (emit_key * Message.envelope) option;
  mutable emit_memo_justified : (emit_key * Message.envelope) option;
  (* sender-side delta-compression window ({!encode_envelope}):
     content digests already shipped inside this phase, plus the
     keyframe counter that bounds how long a receiver that missed the
     full copy keeps dropping references to it *)
  shipped : (bytes, unit) Hashtbl.t;
  mutable shipped_phase : int;
  mutable since_keyframe : int;
  (* last all-references encoding, reusable while the envelope is
     physically unchanged *)
  mutable enc_cache : (Message.envelope * bytes) option;
  (* receiver-side resolution cache for compact references: local
     content digest -> the message it addresses. Filled from every full
     entry this machine decodes, so it is exactly as trustworthy as the
     frames themselves (authentication still happens in [handle]). *)
  resolve : (bytes, Message.t) Hashtbl.t;
}

let id t = Keyring.owner t.keyring
let phase t = t.phase_i
let current_value t = t.v_i
let current_status t = t.status_i
let decision t = t.decision
let decision_phase t = t.decision_phase
let stats t = t.stats
let vset t = t.v

let create cfg ~keyring ~rng ?(behavior = Correct) ~proposal () =
  Proto.validate_config cfg;
  let v_i = Proto.value_of_bit proposal in
  {
    cfg;
    keyring;
    rng;
    behavior;
    phase_i = 1;
    v_i;
    origin_i = Proto.Deterministic;
    status_i = Proto.Undecided;
    v = Vset.create ~n:cfg.n;
    pending = Hashtbl.create 64;
    pending_count = 0;
    decision = None;
    decision_phase = None;
    decided_quorum_phase = None;
    last_broadcast = None;
    decided_claims = Hashtbl.create 16;
    stats = { accepted = 0; rejected_auth = 0; duplicates = 0; pending_peak = 0 };
    coin_flips = 0;
    emit_memo_plain = None;
    emit_memo_justified = None;
    shipped = Hashtbl.create 64;
    shipped_phase = 0;
    since_keyframe = 0;
    enc_cache = None;
    resolve = Hashtbl.create 64;
  }

(* Keyrings are immutable after setup and shared between clones; every
   mutable container is copied (messages themselves are immutable). *)
let clone t =
  {
    cfg = t.cfg;
    keyring = t.keyring;
    rng = Util.Rng.copy t.rng;
    behavior = t.behavior;
    phase_i = t.phase_i;
    v_i = t.v_i;
    origin_i = t.origin_i;
    status_i = t.status_i;
    v = Vset.clone t.v;
    pending = Hashtbl.copy t.pending;
    pending_count = t.pending_count;
    decision = t.decision;
    decision_phase = t.decision_phase;
    decided_quorum_phase = t.decided_quorum_phase;
    last_broadcast = t.last_broadcast;
    decided_claims = Hashtbl.copy t.decided_claims;
    stats =
      {
        accepted = t.stats.accepted;
        rejected_auth = t.stats.rejected_auth;
        duplicates = t.stats.duplicates;
        pending_peak = t.stats.pending_peak;
      };
    coin_flips = t.coin_flips;
    emit_memo_plain = t.emit_memo_plain;
    emit_memo_justified = t.emit_memo_justified;
    shipped = Hashtbl.copy t.shipped;
    shipped_phase = t.shipped_phase;
    since_keyframe = t.since_keyframe;
    enc_cache = t.enc_cache;
    resolve = Hashtbl.copy t.resolve;
  }

(* Canonical serialization of everything that shapes future behavior:
   the protocol variables, the V set, the pending pool (slot order
   preserved — admission order decides which copy becomes a slot's
   primary), the decided-claims tally, and the rng position via the
   coin-flip count. Two machines with equal fingerprints, equal
   configs/keyrings and equal creation seeds behave identically on
   identical future inputs — the soundness condition of the model
   checker's memoized state dedup. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "m%d:ph%d:v%d:o%d:st%d:d%s:dp%s:dq%s:cf%d:lb%s"
       (Keyring.owner t.keyring) t.phase_i
       (Proto.value_to_int t.v_i)
       (match t.origin_i with Proto.Deterministic -> 0 | Proto.Random -> 1)
       (match t.status_i with Proto.Undecided -> 0 | Proto.Decided -> 1)
       (match t.decision with None -> "-" | Some d -> string_of_int d)
       (match t.decision_phase with None -> "-" | Some p -> string_of_int p)
       (match t.decided_quorum_phase with None -> "-" | Some p -> string_of_int p)
       t.coin_flips
       (match t.last_broadcast with
       | None -> "-"
       | Some (p, v, s) ->
           Printf.sprintf "%d.%d.%d" p (Proto.value_to_int v)
             (match s with Proto.Undecided -> 0 | Proto.Decided -> 1)));
  Buffer.add_string buf "|V:";
  Vset.canonical t.v buf;
  Buffer.add_string buf "|P:";
  let pending_keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.pending [] in
  List.iter
    (fun ((sender, phase) as key) ->
      Buffer.add_string buf (Printf.sprintf "s%dp%d=" sender phase);
      List.iter
        (fun (m : Message.t) ->
          Buffer.add_string buf
            (Printf.sprintf "%d.%d.%d;" (Proto.value_to_int m.value)
               (match m.origin with Proto.Deterministic -> 0 | Proto.Random -> 1)
               (match m.status with Proto.Undecided -> 0 | Proto.Decided -> 1)))
        (Hashtbl.find t.pending key))
    (List.sort
       (fun (s1, p1) (s2, p2) ->
         if s1 <> s2 then Int.compare s1 s2 else Int.compare p1 p2)
       pending_keys);
  Buffer.add_string buf "|C:";
  let claims = Hashtbl.fold (fun sender v acc -> (sender, v) :: acc) t.decided_claims [] in
  List.iter
    (fun (sender, v) -> Buffer.add_string buf (Printf.sprintf "%d=%d;" sender v))
    (* senders are unique keys, so ordering by sender alone is total *)
    (List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) claims);
  Buffer.contents buf

(* --- outgoing ----------------------------------------------------------- *)

(* What actually goes on the wire: correct processes send their state;
   the legacy attacker follows the strategy of §7.2. Byzantine
   strategies shape their frames in [emit]; here they report the true
   state, which is what the justification builder supports. *)
let wire_fields t =
  match t.behavior with
  | Correct | Byzantine _ -> (t.v_i, t.origin_i, t.status_i)
  | Attacker -> begin
      match Proto.kind_of_phase t.phase_i with
      | Proto.Converge | Proto.Lock ->
          let flipped =
            match t.v_i with
            | Proto.V0 -> Proto.V1
            | Proto.V1 -> Proto.V0
            | Proto.Vbot -> Proto.V1
          in
          (flipped, Proto.Deterministic, Proto.Undecided)
      | Proto.Decide -> (Proto.Vbot, Proto.Deterministic, Proto.Undecided)
    end

let same_state_as_last_broadcast t =
  match t.last_broadcast with
  | None -> false
  | Some (phase, value, status) ->
      let wv, _, ws = wire_fields t in
      phase = t.phase_i && Proto.value_equal value wv && status = ws

(* Justification bundle for explicit validation: the minimal witness
   sets each of the receiver-side rules needs — a phase quorum at phi-1,
   the value support the rule for (phi, v, origin) demands, and the
   status witness. Greedy selection with (sender, phase) dedup keeps the
   bundle close to the theoretical minimum (about two quorums). *)
let build_justification t =
  let quorum_min = ((t.cfg.n + t.cfg.f) / 2) + 1 in
  let half_min = ((t.cfg.n + t.cfg.f) / 4) + 1 in
  let selected : (int * int, Message.t) Hashtbl.t = Hashtbl.create 32 in
  let matches ?value (m : Message.t) =
    match value with None -> true | Some v -> Proto.value_equal m.value v
  in
  let ensure ~phase ?value need =
    if phase >= 1 && need > 0 then begin
      let have =
        Hashtbl.fold
          (fun (_, p) m acc -> if p = phase && matches ?value m then acc + 1 else acc)
          selected 0
      in
      let missing = ref (need - have) in
      List.iter
        (fun (m : Message.t) ->
          if !missing > 0 && matches ?value m
             && not (Hashtbl.mem selected (m.sender, m.phase))
          then begin
            Hashtbl.replace selected (m.sender, m.phase) m;
            decr missing
          end)
        (Vset.messages_at t.v ~phase)
    end
  in
  let phi = t.phase_i in
  let value, origin, status = wire_fields t in
  (* The previous three phases make one adoption hop self-contained:
     a phase-phi message's value and status rules reach at most phi-2,
     and the supports of those supports reach phi-3 (which validates
     against material a receiver at phase phi-3 already holds). *)
  for back = 1 to 3 do
    ensure ~phase:(phi - back) t.cfg.n
  done;
  if phi > 1 then ensure ~phase:(phi - 1) quorum_min;
  (if phi > 1 then
     match (Proto.kind_of_phase phi, value, origin) with
     | Proto.Lock, v, _ -> ensure ~phase:(phi - 1) ~value:v half_min
     | Proto.Decide, Proto.Vbot, _ ->
         ensure ~phase:(phi - 2) ~value:Proto.V0 half_min;
         ensure ~phase:(phi - 2) ~value:Proto.V1 half_min
     | Proto.Decide, v, _ -> ensure ~phase:(phi - 1) ~value:v quorum_min
     | Proto.Converge, v, Proto.Deterministic -> ensure ~phase:(phi - 2) ~value:v quorum_min
     | Proto.Converge, _, Proto.Random ->
         ensure ~phase:(phi - 1) ~value:Proto.Vbot quorum_min);
  (match status with
  | Proto.Undecided ->
      if phi > 3 then begin
        let phi' = Validation.highest_lock_phase_below phi in
        ensure ~phase:phi' ~value:Proto.V0 half_min;
        ensure ~phase:phi' ~value:Proto.V1 half_min;
        ensure ~phase:(Validation.highest_decide_phase_below phi) ~value:Proto.Vbot 1
      end
  | Proto.Decided -> begin
      match t.decided_quorum_phase with
      | Some p -> ensure ~phase:p ~value quorum_min
      | None -> ()
    end);
  Hashtbl.fold (fun _ m acc -> m :: acc) selected []
  |> List.sort (fun (a : Message.t) (b : Message.t) ->
         if a.phase <> b.phase then Int.compare a.phase b.phase
         else Int.compare a.sender b.sender)

type transmission =
  | Quiet
  | Broadcast of Message.envelope
  | Per_receiver of (int * Message.envelope) list

(* Corrupt the one-time signature in a way a verifier must detect: flip
   every bit of the first proof byte. *)
let garble_proof proof =
  let b = Bytes.copy proof in
  if Bytes.length b > 0 then
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  b

(* Sign a strategy-shaped frame. Replayed phases reuse that phase's
   (long-revealed) one-time key, which is exactly what makes the replay
   attack realistic; the phase is clamped to the key horizon. *)
let sign_wire t (w : Strategy.wire) =
  let phase =
    match w.Strategy.w_phase with
    | None -> t.phase_i
    | Some p -> max 1 (min (Keyring.phases t.keyring) p)
  in
  let proof = Keyring.sign t.keyring ~phase ~value:w.w_value ~origin:w.w_origin in
  let proof = if w.Strategy.w_garble then garble_proof proof else proof in
  {
    Message.sender = id t;
    phase;
    value = w.Strategy.w_value;
    origin = w.Strategy.w_origin;
    status = w.Strategy.w_status;
    proof;
  }

let emit_strategy t strategy ~justify =
  let view =
    {
      Strategy.phase = t.phase_i;
      value = t.v_i;
      status = t.status_i;
      n = t.cfg.n;
      self = id t;
    }
  in
  match Strategy.plan strategy ~rng:t.rng view with
  | Strategy.Skip -> Quiet
  | Strategy.Emit w ->
      let msg = sign_wire t w in
      let justification = if justify then build_justification t else [] in
      t.last_broadcast <- Some (t.phase_i, msg.value, msg.status);
      Broadcast { Message.msg; justification }
  | Strategy.Emit_per_receiver f ->
      let outs =
        List.filter_map
          (fun rx ->
            if rx = id t then None
            else
              match f rx with
              | None -> None
              | Some w -> Some (rx, { Message.msg = sign_wire t w; justification = [] }))
          (List.init t.cfg.n (fun i -> i))
      in
      t.last_broadcast <- Some (t.phase_i, t.v_i, t.status_i);
      Per_receiver outs

let emit t ~justify =
  if t.phase_i > t.cfg.max_phases then Quiet
  else
    match t.behavior with
    | Correct | Attacker ->
        let value, origin, status = wire_fields t in
        let key =
          {
            ek_phase = t.phase_i;
            ek_value = Proto.value_to_int value;
            ek_origin = (match origin with Proto.Deterministic -> 0 | Proto.Random -> 1);
            ek_status = (match status with Proto.Undecided -> 0 | Proto.Decided -> 1);
            ek_vset_version = Vset.version t.v;
            ek_dq_phase = Option.value ~default:(-1) t.decided_quorum_phase;
          }
        in
        let memo = if justify then t.emit_memo_justified else t.emit_memo_plain in
        (match memo with
        | Some (k, env) when emit_key_equal k key ->
            (* nothing the envelope depends on changed since it was
               built: reuse it verbatim (its message is already in V) *)
            t.last_broadcast <- Some (t.phase_i, value, status);
            Broadcast env
        | Some _ | None ->
            let proof = Keyring.sign t.keyring ~phase:t.phase_i ~value ~origin in
            let msg =
              { Message.sender = id t; phase = t.phase_i; value; origin; status; proof }
            in
            let justification = if justify then build_justification t else [] in
            t.last_broadcast <- Some (t.phase_i, value, status);
            (* a correct process trusts its own state: V gets the message
               directly (any loopback copy is deduplicated) *)
            ignore (Vset.add t.v msg);
            let env = { Message.msg; justification } in
            (* keyed on the post-insert version so the very next
               unchanged-state emit already hits *)
            let entry = Some ({ key with ek_vset_version = Vset.version t.v }, env) in
            if justify then t.emit_memo_justified <- entry
            else t.emit_memo_plain <- entry;
            Broadcast env)
    | Byzantine strategy -> emit_strategy t strategy ~justify

let emit_as t ~strategy ~justify =
  if t.phase_i > t.cfg.max_phases then Quiet else emit_strategy t strategy ~justify

let prepare t ~justify =
  match emit t ~justify with
  | Quiet -> None
  | Broadcast env -> Some env
  | Per_receiver _ ->
      (* broadcast-only drivers see an equivocator as silent; shells that
         support unicast use [emit] directly *)
      None

(* --- state transitions (task T2) ---------------------------------------- *)

let local_coin t =
  Obs.Metrics.incr "proto.coin_flips" ~labels:[ ("proto", "turquois") ];
  t.coin_flips <- t.coin_flips + 1;
  if Util.Rng.bool t.rng then Proto.V1 else Proto.V0

(* Transition rule 1 (lines 10-18): adopt the state of a higher-phase
   message. Coin-flip values are re-flipped locally (line 12). *)
let try_adopt t =
  match Vset.highest_message t.v with
  | Some h when h.phase > t.phase_i ->
      t.phase_i <- h.phase;
      (match (Proto.kind_of_phase h.phase, h.origin) with
      | Proto.Converge, Proto.Random ->
          t.v_i <- local_coin t;
          t.origin_i <- Proto.Random
      | (Proto.Converge | Proto.Lock | Proto.Decide), (Proto.Random | Proto.Deterministic) ->
          t.v_i <- h.value;
          t.origin_i <- h.origin);
      t.status_i <- h.status;
      (match (h.status, t.decided_quorum_phase) with
      | Proto.Decided, None -> t.decided_quorum_phase <- Some h.phase
      | (Proto.Decided | Proto.Undecided), _ -> ());
      true
  | Some _ | None -> false

let quorum_value t ~phase =
  let find value =
    if Proto.quorum_exceeded t.cfg (Vset.count_value t.v ~phase ~value) then Some value
    else None
  in
  match find Proto.V0 with Some v -> Some v | None -> find Proto.V1

(* Transition rule 2 (lines 19-39): act on a quorum at the current phase. *)
let try_quorum_step t =
  if not (Proto.quorum_exceeded t.cfg (Vset.count_phase t.v ~phase:t.phase_i)) then false
  else begin
    (match Proto.kind_of_phase t.phase_i with
    | Proto.Converge ->
        t.v_i <- Vset.majority_value t.v ~phase:t.phase_i;
        t.origin_i <- Proto.Deterministic
    | Proto.Lock ->
        (match quorum_value t ~phase:t.phase_i with
        | Some v -> t.v_i <- v
        | None -> t.v_i <- Proto.Vbot);
        t.origin_i <- Proto.Deterministic
    | Proto.Decide ->
        (match quorum_value t ~phase:t.phase_i with
        | Some _ ->
            t.status_i <- Proto.Decided;
            if t.decided_quorum_phase = None then t.decided_quorum_phase <- Some t.phase_i
        | None -> ());
        (match Vset.some_binary_value t.v ~phase:t.phase_i with
        | Some v ->
            t.v_i <- v;
            t.origin_i <- Proto.Deterministic
        | None ->
            t.v_i <- local_coin t;
            t.origin_i <- Proto.Random));
    t.phase_i <- t.phase_i + 1;
    true
  end

let settle_decision t =
  if t.status_i = Proto.Decided && t.decision = None then begin
    match Proto.bit_of_value t.v_i with
    | Some bit ->
        t.decision <- Some bit;
        let at_phase =
          match t.decided_quorum_phase with Some p -> p | None -> t.phase_i
        in
        t.decision_phase <- Some at_phase;
        [ Decided { value = bit; phase = at_phase } ]
    | None ->
        (* unreachable for a correct process: decided status is only set
           alongside a binary value *)
        assert false
  end
  else []

(* Decision certificate: at least f+1 distinct processes have sent
   authentic messages claiming they decided v. At least one of them is
   correct, that one really decided v, and agreement makes v the only
   decidable value — so adopting it is safe. This is how a process that
   fell too far behind (or was dragged past the deciding phase by a
   Byzantine higher-phase message) still terminates once the group has
   decided — the same amplification idea as Bracha's READY rule. A full
   quorum of claims would be too strong: with n = 4, f = 1, a process
   stranded above the decision phase hears only the 2 other correct
   deciders, and the chaos harness's equivocation strategy turns that
   into a permanent stall. *)
let try_decision_certificate t =
  if t.status_i = Proto.Decided then false
  else begin
    let votes = Hashtbl.create 2 in
    Hashtbl.iter
      (fun _ v -> Hashtbl.replace votes v (1 + Option.value ~default:0 (Hashtbl.find_opt votes v)))
      t.decided_claims;
    let winner =
      Hashtbl.fold
        (fun v count acc -> if count >= t.cfg.f + 1 then Some v else acc)
        votes None
    in
    match winner with
    | Some bit ->
        t.v_i <- Proto.value_of_bit bit;
        t.origin_i <- Proto.Deterministic;
        t.status_i <- Proto.Decided;
        true
    | None -> false
  end

let update_state t =
  let phase_before = t.phase_i in
  let progress = ref true in
  while !progress do
    let adopted = try_adopt t in
    let stepped = try_quorum_step t in
    progress := adopted || stepped
  done;
  ignore (try_decision_certificate t);
  let decide_events = settle_decision t in
  if t.phase_i <> phase_before then Phase_changed t.phase_i :: decide_events
  else decide_events

(* --- incoming ----------------------------------------------------------- *)

let pending_add t (m : Message.t) =
  let key = (m.sender, m.phase) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.pending key) in
  if List.exists (Message.header_equal m) existing then ()
  else if List.length existing >= Crypto.Onetime_sig.slot_count then ()
  else begin
    Hashtbl.replace t.pending key (m :: existing);
    t.pending_count <- t.pending_count + 1;
    if t.pending_count > t.stats.pending_peak then t.stats.pending_peak <- t.pending_count
  end

(* Re-examine the pool in ascending phase order until a fixpoint: a
   message admitted to V may unlock the validation of later ones. *)
let drain_pending t =
  let admitted_any = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates =
      Hashtbl.fold (fun key msgs acc -> (key, msgs) :: acc) t.pending []
      |> List.sort (fun ((_, p1), _) ((_, p2), _) -> Int.compare p1 p2)
    in
    List.iter
      (fun (key, msgs) ->
        let still_pending =
          List.filter
            (fun m ->
              if Vset.mem_copy t.v m then begin
                t.stats.duplicates <- t.stats.duplicates + 1;
                Obs.Metrics.incr "validation.duplicates";
                t.pending_count <- t.pending_count - 1;
                false
              end
              else if Validation.is_valid t.cfg t.v m then begin
                if Vset.add t.v m then begin
                  t.stats.accepted <- t.stats.accepted + 1;
                  admitted_any := true;
                  progress := true
                end
                else begin
                  t.stats.duplicates <- t.stats.duplicates + 1;
                  Obs.Metrics.incr "validation.duplicates"
                end;
                t.pending_count <- t.pending_count - 1;
                false
              end
              else true)
            msgs
        in
        if still_pending = [] then Hashtbl.remove t.pending key
        else Hashtbl.replace t.pending key still_pending)
      candidates
  done;
  !admitted_any

let record_decided_claim t (m : Message.t) =
  match (m.status, m.value) with
  | Proto.Decided, (Proto.V0 | Proto.V1) ->
      if m.sender <> id t && not (Hashtbl.mem t.decided_claims m.sender) then
        Hashtbl.replace t.decided_claims m.sender (Proto.value_to_int m.value)
  | (Proto.Decided | Proto.Undecided), _ -> ()

let handle t { Message.msg; justification } =
  let auth_checks = ref 0 in
  let claims_before = Hashtbl.length t.decided_claims in
  let consider m =
    if Vset.mem_copy t.v m then begin
      t.stats.duplicates <- t.stats.duplicates + 1;
      Obs.Metrics.incr "validation.duplicates"
    end
    else begin
      incr auth_checks;
      if Intern.check_message t.keyring m then begin
        record_decided_claim t m;
        pending_add t m
      end
      else begin
        t.stats.rejected_auth <- t.stats.rejected_auth + 1;
        Obs.Metrics.incr "validation.rejected" ~labels:[ ("rule", "auth") ]
      end
    end
  in
  List.iter consider justification;
  consider msg;
  let admitted = drain_pending t in
  let new_claims = Hashtbl.length t.decided_claims > claims_before in
  let events = if admitted || new_claims then update_state t else [] in
  (events, !auth_checks)

(* --- delta-compressed frames -------------------------------------------- *)

(* Every [keyframe_every]-th justified encode of a phase ships all
   entries in full again. Replaced-in-queue or collision-lost frames can
   leave receivers without the full copy a later reference needs; the
   keyframe bounds that blackout to at most three justified sends. *)
let keyframe_every = 4

let encode_justified t (env : Message.envelope) =
  (* the shipped window is per phase: references only ever point at
     entries shipped since this machine last changed phase *)
  if t.shipped_phase <> t.phase_i then begin
    Hashtbl.reset t.shipped;
    t.shipped_phase <- t.phase_i;
    t.since_keyframe <- 0;
    t.enc_cache <- None
  end;
  let keyframe = t.since_keyframe mod keyframe_every = 0 in
  t.since_keyframe <- t.since_keyframe + 1;
  match t.enc_cache with
  | Some (cached, b) when (not keyframe) && cached == env && not (Obs.Trace2.enabled ()) ->
      (* same envelope, window unchanged: every entry is still a
         shipped reference, so the previous wire bytes are exact.
         (Skipped under causal tracing, which identifies frames by
         physical payload: each send must then own fresh bytes.) *)
      b
  | Some _ | None ->
      let all_refs = ref true in
      let wjust =
        List.map
          (fun m ->
            let d = Intern.message_digest m in
            if (not keyframe) && Hashtbl.mem t.shipped d then Message.Ref d
            else begin
              Hashtbl.replace t.shipped d ();
              all_refs := false;
              Message.Full m
            end)
          env.Message.justification
      in
      let b = Message.encode_wire { Message.wmsg = env.Message.msg; wjust } in
      t.enc_cache <- (if !all_refs then Some (env, b) else None);
      b

let encode_envelope t (env : Message.envelope) =
  if (not (Intern.compact_enabled ())) || env.Message.justification = [] then
    Message.encode env
  else encode_justified t env

let handle_wire t (wi : Message.wire) =
  let remember (m : Message.t) = Hashtbl.replace t.resolve (Intern.message_digest m) m in
  let justification =
    (* in order: a full entry becomes resolvable to any reference after
       it, including inside this same frame *)
    List.filter_map
      (function
        | Message.Full m ->
            remember m;
            Some m
        | Message.Ref d -> (
            match Hashtbl.find_opt t.resolve d with
            | Some m -> Some m
            | None ->
                (* nothing this digest could be has reached us yet; the
                   sender's next keyframe retransmits it in full *)
                Obs.Metrics.incr "compact.unresolved";
                None))
      wi.Message.wjust
  in
  remember wi.Message.wmsg;
  handle t { Message.msg = wi.Message.wmsg; justification }
