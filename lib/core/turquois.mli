(** The Turquois Byzantine k-consensus protocol (Algorithm 1).

    Each instance runs on one simulated {!Net.Node.t}: task T1 is the
    10 ms broadcast tick (re-armed immediately on phase changes, as in
    the paper's prototype), task T2 is the message handler. Arriving
    messages pass authenticity validation (one hash) and then semantic
    validation; messages that cannot be validated yet wait in a pending
    pool and are re-examined whenever V grows — this implements the
    optimistic implicit validation with explicit justifications attached
    to repeated broadcasts (Section 6.2).

    Safety holds for any number of omission faults; with fewer than
    σ omissions per round the instance keeps making progress, and
    randomization ensures termination with probability 1. *)

(** Retransmission pacing for task T1. The paper's prototype re-arms a
    fixed 10 ms tick and notes that "an optimization of the
    retransmission mechanism could significantly improve the performance
    of Turquois" in loss-sensitive scenarios (§7.3). [Adaptive] is that
    optimization: while the state does not change, the tick interval
    backs {e down} multiplicatively to [floor] (faster recovery of lost
    messages); any phase change resets it to the configured interval.
    The ablation benchmark quantifies the difference.

    [Mac_aware] paces from the medium instead of a preset schedule: at
    every own phase change it reads the radio's cumulative airtime, and
    sets the tick to [headroom] times the channel occupancy the finished
    phase consumed, clamped to [[max floor tick_interval, cap]] — it
    only ever adapts {e upward} from the configured interval, so a
    16-station network keeps the paper's exact 10 ms timing while 64 or
    128 stations — whose phases take hundreds of milliseconds of
    airtime to clear — back off proportionally instead of flooding the
    medium with retransmissions it cannot carry. *)
type tick_policy =
  | Fixed_tick
  | Adaptive_tick of { floor : float; factor : float }
  | Mac_aware of { floor : float; headroom : float; cap : float }

val default_adaptive : tick_policy
(** Floor 2.5 ms, factor 0.5. *)

val default_mac_aware : tick_policy
(** Floor 2.5 ms, headroom 0.25, cap 0.5 s. *)

(** CPU-cost model for message authentication — an ablation knob. The
    protocol always uses the one-time hash signatures on the wire;
    [Rsa_cost] charges each broadcast a public-key signing cost and each
    authenticity check a public-key verification cost instead of a hash,
    quantifying what the paper's contribution (3) saves. *)
type auth_cost = Onetime_cost | Rsa_cost

(** Re-export of {!Machine.behavior}. [Attacker] is the paper's fixed
    Byzantine strategy (§7.2): broadcast the opposite value in CONVERGE
    and LOCK phases and ⊥ in DECIDE phases, even when the resulting
    messages are invalid. [Byzantine] runs an arbitrary strategy from
    the {!Strategy} library; equivocating plans are shipped as unicasts
    so no receiver overhears the conflicting copy. *)
type behavior = Machine.behavior =
  | Correct
  | Attacker
  | Byzantine of Strategy.t

type stats = {
  mutable ticks : int;            (** T1 activations *)
  mutable broadcasts : int;       (** messages put on the air *)
  mutable justified_broadcasts : int;  (** broadcasts carrying a bundle *)
  mutable accepted : int;         (** messages admitted to V *)
  mutable rejected_auth : int;    (** authenticity failures *)
  mutable duplicates : int;       (** already in V *)
  mutable pending_peak : int;     (** high-water mark of the pool *)
}

type t

val create :
  Net.Node.t ->
  Proto.config ->
  keyring:Keyring.t ->
  ?behavior:behavior ->
  ?port:int ->
  ?tick_policy:tick_policy ->
  ?linger_ticks:int ->
  ?auth_cost:auth_cost ->
  proposal:int ->
  unit ->
  t
(** Binds an instance to a node. [proposal] is the initial binary value.
    [port] defaults to 443 (any free datagram port works as long as all
    instances agree). After deciding, the instance keeps broadcasting for
    [linger_ticks] more T1 activations (default 50) so that slower
    processes can still collect quorums and decision certificates, then
    goes quiet. The instance is inert until {!start}.
    @raise Invalid_argument on a bad config or proposal. *)

val start : t -> unit
(** Broadcasts the initial state and starts the tick timer. *)

val stop : t -> unit
(** Cancels the broadcast tick. The instance stops transmitting (and,
    if undecided, stops trying to decide); reception is unaffected
    until the owner unlistens the port. Used when a multi-instance
    service retires an instance whose outcome is already known. *)

val on_decide : t -> (value:int -> phase:int -> unit) -> unit
(** Called exactly once, when the decision variable is first set. *)

val on_phase_change : t -> (phase:int -> unit) -> unit

val id : t -> int
val phase : t -> int
val current_value : t -> Proto.value
val current_status : t -> Proto.status
val decision : t -> int option
val decision_phase : t -> int option
val stats : t -> stats
val vset : t -> Vset.t
(** The live V set — read-only use (tests, instrumentation). *)
