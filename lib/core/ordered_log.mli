(** Totally-ordered message log on top of binary k-consensus — the
    "order messages" coordination task of the paper's introduction.

    Slots are numbered 0, 1, 2, …; slot s belongs to the designated
    proposer [s mod n] (rotating coordinator, no leader reliance: a
    silent proposer only costs its own slots). The proposer of an open
    slot broadcasts its payload and every process runs one consensus
    instance per slot, proposing 1 iff it received the payload within
    the wait window. A slot that decides 1 delivers its payload to every
    process in slot order; a slot that decides 0 is skipped. Agreement
    of the underlying consensus gives all correct processes the same
    committed/skipped pattern, hence the same log.

    Fault coverage: the *ordering* layer inherits Turquois's tolerance
    (Byzantine consensus participants, unrestricted omissions). Payload
    {e content} dissemination is best-effort broadcast, so a Byzantine
    {e proposer} could send different payloads for its own slot to
    different processes; closing that hole requires reliably
    broadcasting payloads first (e.g. with the echo/ready protocol in
    {!Baselines.Bracha}) and is out of scope here — the paper's own
    scope is the binary consensus underneath. *)

type t

val create :
  Net.Node.t ->
  Proto.config ->
  keyring:Keyring.t ->
  capacity:int ->
  ?payload_wait:float ->
  ?base_port:int ->
  unit ->
  t
(** [capacity] is the number of slots this log can commit (the keyring
    must cover [capacity * cfg.max_phases] phases). [payload_wait]
    (default 50 ms) is how long a non-proposer waits for a slot's
    payload before proposing 0. All processes must use the same
    geometry. *)

val start : t -> unit

val submit : t -> bytes -> unit
(** Queues a payload; it is broadcast when one of this process's own
    slots opens. *)

val on_deliver : t -> (slot:int -> payload:bytes option -> unit) -> unit
(** Fires exactly once per slot, in slot order. [None] means the slot
    was skipped (decided 0). *)

val delivered : t -> (int * bytes option) list
(** Slots delivered so far, ascending. *)

val current_slot : t -> int
(** The slot this process is currently working on. *)
