(** Pipelined totally-ordered command log over the multi-instance
    {!Service} — the closest thing in this repo to a production
    replicated state machine.

    Slots are numbered [0 .. capacity-1] and owned round-robin
    ([proposer_of slot = slot mod n]). Up to [window] slots are open
    concurrently at each process (a pipeline); each decides through its
    own binary Turquois instance, and delivery happens strictly in slot
    order behind a cursor. A proposer drains its pending submissions
    into one length-prefixed {e batch} per slot, so throughput scales
    with offered load without extra consensus instances.

    Binary consensus only fixes {e whether} a slot commits, not {e what
    bytes} it carries. The gap is closed with an echo/ready certificate
    bound to the batch's SHA-256 digest: a slot delivers its payload
    only once more than 2f distinct processes have sent READY for that
    digest, and — because any two such sets intersect in a correct
    process when n > 3f — no two honest processes can ever deliver
    different bytes for the same committed slot, even under an
    equivocating proposer. Payload bytes claimed by anyone other than
    the slot's proposer are adopted only when backed by at least f+1
    READYs, so a Byzantine non-proposer cannot inject content into
    someone else's slot.

    The module keeps O(window) per-slot state: everything more than
    [help_retention] slots behind the delivery cursor is pruned (and
    the underlying consensus instance retired), except a proposer's own
    batch, which survives until its rebroadcast grace expires. All
    internal timers quiesce once there is no timed work left, so a
    finished log drains the engine to zero pending events.

    Because a quorum excludes up to f processes, the fast majority can
    decide, deliver and retire a slot's instance without a lagging
    process ever seeing it — that process would then sit on a dead
    instance forever. A head slot that stays undecided for a grace
    period therefore broadcasts a PULL; peers answer with a burst of
    OUTCOME claims (1 bit per delivered slot, retained at any depth)
    and, within the retention horizon, re-ship the certificate and
    batch. f+1 matching claims from distinct senders contain an honest
    one, so the straggler adopts the decisions and rejoins without
    re-running dead consensus. *)

type t

type slot_outcome = Committed of bytes | Committed_awaiting_payload | Skipped

(** Retained-entry counts across the internal tables, for memory-bound
    assertions in tests. *)
type mem_stats = {
  payload_entries : int;
  vote_entries : int;
  outcome_entries : int;
  proposed_entries : int;
  timer_entries : int;
}

val create :
  Net.Node.t ->
  Proto.config ->
  keyring:Keyring.t ->
  capacity:int ->
  ?window:int ->
  ?max_batch:int ->
  ?payload_wait:float ->
  ?noop_wait:float ->
  ?payload_grace:float ->
  ?help_retention:int ->
  ?base_port:int ->
  ?retain_deliveries:bool ->
  unit ->
  t
(** All processes must use identical [capacity], [window], [max_batch]
    and [base_port]. [window] (default 1) is the pipeline depth: how
    many undecided slots may run concurrently per process. [max_batch]
    (default 64) caps commands per slot. [payload_wait] (default 50 ms)
    is how long a non-proposer waits for a slot's payload before voting
    0 — the crash deadline. A live proposer with nothing to send
    announces an explicit no-op after [noop_wait] (default 20 ms), so
    idle slots skip at consensus speed instead of stalling the pipeline
    for the crash deadline. [payload_grace] (default 2 s) bounds
    proposer rebroadcast traffic and paces straggler catch-up pulls.
    [help_retention] (default [window]) is how many delivered slots of
    certificate-and-payload state are kept behind the cursor to answer
    straggler pulls; beyond it only each slot's 1-bit outcome survives,
    so a further-behind straggler can still learn skip decisions at any
    depth but can recover committed bytes only within the retention
    horizon. Size it generously (e.g. [capacity]) for long unattended
    workloads. Payload frames use [base_port - 1]; consensus
    instance [s] uses [base_port + s]. [retain_deliveries] (default
    true) keeps the in-memory history returned by {!delivered}; switch
    it off for long workloads to keep memory at O(window).
    @raise Invalid_argument on non-positive capacity, window or
    max_batch, or when the keyring cannot cover
    [capacity * cfg.max_phases] phases. *)

val start : t -> unit
(** Registers handlers and opens the first [window] slots. Idempotent. *)

val submit : t -> bytes -> unit
(** Queues one command for inclusion in this process's next proposer
    slot (possibly batched with others). Commands whose slot is skipped
    are requeued automatically. *)

val on_deliver : t -> (slot:int -> payload:bytes option -> unit) -> unit
(** Delivery callback, fired in strict slot order. [payload] is the
    encoded batch ([Some] for committed slots, [None] for skipped
    ones); decode it with {!decode_batch}. *)

val delivered : t -> (int * bytes option) list
(** Deliveries so far, oldest first (empty when created with
    [~retain_deliveries:false]). *)

val delivered_count : t -> int

val next_deliver : t -> int
(** The delivery cursor: the lowest slot not yet delivered. *)

val payload_port : t -> int
val mem_stats : t -> mem_stats

(** {2 Batch and frame codecs}

    Exposed for tests (forging adversarial frames, decoding delivered
    batches) and for tools that render log contents. *)

val encode_batch : bytes list -> bytes

val decode_batch : bytes -> bytes list
(** @raise Util.Codec.Malformed or [Truncated] on bad input. *)

val batch_digest : bytes -> bytes

val encode_payload_frame : slot:int -> bytes -> bytes
(** The proposer's announcement for [slot] carrying a batch; the bound
    digest is computed internally. *)

val encode_echo_frame : slot:int -> digest:bytes -> bytes
