type value = V0 | V1 | Vbot

let value_equal a b =
  match (a, b) with V0, V0 | V1, V1 | Vbot, Vbot -> true | (V0 | V1 | Vbot), _ -> false

let value_to_int = function V0 -> 0 | V1 -> 1 | Vbot -> 2

let value_of_int = function
  | 0 -> V0
  | 1 -> V1
  | 2 -> Vbot
  | i -> raise (Util.Codec.Malformed (Printf.sprintf "invalid value %d" i))

let value_of_bit = function
  | 0 -> V0
  | 1 -> V1
  | b -> invalid_arg (Printf.sprintf "Proto.value_of_bit: %d" b)

let bit_of_value = function V0 -> Some 0 | V1 -> Some 1 | Vbot -> None
let value_to_string = function V0 -> "0" | V1 -> "1" | Vbot -> "bot"

type origin = Deterministic | Random
type status = Undecided | Decided
type phase_kind = Converge | Lock | Decide

let kind_of_phase phi =
  if phi < 1 then invalid_arg "Proto.kind_of_phase: phases start at 1";
  match phi mod 3 with 1 -> Converge | 2 -> Lock | _ -> Decide

type config = { n : int; f : int; k : int; max_phases : int; tick_interval : float }

let default_config ~n =
  let f = (n - 1) / 3 in
  { n; f; k = n - f; max_phases = 300; tick_interval = 10.0e-3 }

let validate_config c =
  if c.n <= 0 then invalid_arg "Proto.validate_config: n must be positive";
  if c.f < 0 then invalid_arg "Proto.validate_config: f must be non-negative";
  if c.n <= 3 * c.f then invalid_arg "Proto.validate_config: need n > 3f";
  (* (n+f)/2 < k <= n-f *)
  if not (2 * c.k > c.n + c.f && c.k <= c.n - c.f) then
    invalid_arg "Proto.validate_config: need (n+f)/2 < k <= n-f";
  if c.max_phases < 3 then invalid_arg "Proto.validate_config: max_phases too small";
  if c.tick_interval <= 0.0 then invalid_arg "Proto.validate_config: bad tick interval"

let quorum_exceeded c count = 2 * count > c.n + c.f
let half_quorum_exceeded c count = 4 * count > c.n + c.f
let past_faulty c count = count > c.f
let past_double_faulty c count = count > 2 * c.f

let sigma c ~t =
  if t < 0 || t > c.f then invalid_arg "Proto.sigma: need 0 <= t <= f";
  let ceil_half = (c.n - t + 1) / 2 in
  (ceil_half * (c.n - c.k - t)) + c.k - 2
