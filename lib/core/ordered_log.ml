(* Payload frames travel on [payload_port]; slot s's consensus instance
   runs on [base_port + s] through the shared Service. Up to [window]
   slots are open concurrently at each process (a pipeline); delivery
   stays in slot order via the [next_deliver] cursor. A slot's payload
   is a batch of submitted commands, and its SHA-256 digest is bound by
   an echo/ready exchange (Bracha-style) so that an equivocating
   proposer cannot make two honest processes deliver different bytes
   for the same committed slot:

     - the proposer broadcasts PAYLOAD(slot, digest, batch);
     - a process that holds the proposer's payload broadcasts
       ECHO(slot, digest), once;
     - more than (n+f)/2 distinct ECHO senders for one digest trigger
       READY(slot, digest) — with the batch attached when held;
     - f+1 READYs amplify (send READY without having echoed);
     - 2f+1 READYs certify the digest: quorum intersection means at
       most one digest per slot can ever be certified.

   A slot that decides 1 delivers only when the certified digest and a
   matching batch are both present; payload bytes from anyone other
   than the proposer are adopted only when backed by f+1 READYs for
   their digest, which closes the payload-injection hole. *)

type slot_outcome = Committed of bytes | Committed_awaiting_payload | Skipped

type mem_stats = {
  payload_entries : int;
  vote_entries : int;  (* echo + ready senders across retained slots *)
  outcome_entries : int;
  proposed_entries : int;
  timer_entries : int;  (* rebroadcast graces + commit retries + help marks *)
}

type t = {
  node : Net.Node.t;
  cfg : Proto.config;
  service : Service.t;
  capacity : int;
  window : int;
  max_batch : int;
  payload_wait : float;
  noop_wait : float;
  payload_grace : float;
  payload_port : int;
  pending : bytes Queue.t;                    (* my submitted commands *)
  proposed : (int, unit) Hashtbl.t;           (* slots we already voted on *)
  payloads : (int, bytes * bytes) Hashtbl.t;  (* slot -> (batch, digest) *)
  echoes : (int, (int, bytes) Hashtbl.t) Hashtbl.t;  (* slot -> sender -> digest *)
  readys : (int, (int, bytes) Hashtbl.t) Hashtbl.t;
  my_echo : (int, bytes) Hashtbl.t;           (* digest I echoed, per slot *)
  my_ready : (int, bytes) Hashtbl.t;
  certs : (int, bytes) Hashtbl.t;             (* slot -> certified digest *)
  noops : (int, unit) Hashtbl.t;              (* proposer announced nothing-to-send *)
  outcomes : (int, slot_outcome) Hashtbl.t;   (* decided slots *)
  claims : (int, (int, bool) Hashtbl.t) Hashtbl.t;
      (* slot -> sender -> claimed outcome, from peers that delivered it *)
  rebroadcast : (int, float) Hashtbl.t;       (* my proposer slots: grace deadline *)
  retry : (int, float) Hashtbl.t;       (* committed-but-undelivered: retry deadline *)
  help : (int, unit) Hashtbl.t;         (* delivered slots a straggler asked about *)
  tell : (int, unit) Hashtbl.t;   (* delivered slots whose outcome a straggler needs *)
  outcome_bits : Bytes.t;  (* delivered slots: bit set = committed (1 bit/slot) *)
  help_retention : int;    (* delivered slots kept around for stragglers *)
  mutable next_open : int;
  mutable open_undecided : int;
  mutable next_deliver : int;
  mutable pruned_below : int;          (* per-slot state below this slot is gone *)
  mutable delivery_count : int;
  mutable deliveries : (int * bytes option) list;  (* newest first *)
  mutable deliver_cb : (slot:int -> payload:bytes option -> unit) option;
  retain_deliveries : bool;
  mutable tick_armed : bool;
  mutable head_armed : int;  (* head slot whose pacing timer is set; -1 none *)
  mutable started : bool;
}

let n t = t.cfg.Proto.n
let me t = Net.Node.id t.node
let now t = Net.Engine.now (Net.Node.engine t.node)
let proposer_of t slot = slot mod n t
let next_deliver t = t.next_deliver
let delivered_count t = t.delivery_count
let payload_port t = t.payload_port
let on_deliver t f = t.deliver_cb <- Some f
let delivered t = List.rev t.deliveries

let mem_stats t =
  let inner tbl = Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s) tbl 0 in
  {
    payload_entries = Hashtbl.length t.payloads;
    vote_entries = inner t.echoes + inner t.readys;
    outcome_entries = Hashtbl.length t.outcomes;
    proposed_entries = Hashtbl.length t.proposed;
    timer_entries =
      Hashtbl.length t.rebroadcast + Hashtbl.length t.retry + Hashtbl.length t.help;
  }

let create node cfg ~keyring ~capacity ?(window = 1) ?(max_batch = 64)
    ?(payload_wait = 0.050) ?(noop_wait = 0.020) ?(payload_grace = 2.0)
    ?help_retention ?(base_port = 15000) ?(retain_deliveries = true) () =
  if capacity < 1 then invalid_arg "Ordered_log.create: capacity must be positive";
  if window < 1 then invalid_arg "Ordered_log.create: window must be positive";
  if max_batch < 1 then invalid_arg "Ordered_log.create: max_batch must be positive";
  let help_retention =
    match help_retention with
    | None -> window
    | Some r ->
        if r < 1 then invalid_arg "Ordered_log.create: help_retention must be positive";
        max r window
  in
  (* short linger: with many concurrent instances the default 50-tick
     tail traffic of each decided slot would congest the next ones *)
  let service =
    Service.create node cfg ~keyring ~instances:capacity ~base_port ~linger_ticks:10 ()
  in
  {
    node;
    cfg;
    service;
    capacity;
    window;
    max_batch;
    payload_wait;
    noop_wait;
    payload_grace;
    payload_port = base_port - 1;
    pending = Queue.create ();
    proposed = Hashtbl.create 32;
    payloads = Hashtbl.create 32;
    echoes = Hashtbl.create 32;
    readys = Hashtbl.create 32;
    my_echo = Hashtbl.create 32;
    my_ready = Hashtbl.create 32;
    certs = Hashtbl.create 32;
    noops = Hashtbl.create 32;
    outcomes = Hashtbl.create 32;
    claims = Hashtbl.create 8;
    rebroadcast = Hashtbl.create 8;
    retry = Hashtbl.create 8;
    help = Hashtbl.create 8;
    tell = Hashtbl.create 8;
    outcome_bits = Bytes.make ((capacity + 7) / 8) '\000';
    help_retention;
    next_open = 0;
    open_undecided = 0;
    next_deliver = 0;
    pruned_below = 0;
    delivery_count = 0;
    deliveries = [];
    deliver_cb = None;
    retain_deliveries;
    tick_armed = false;
    head_armed = -1;
    started = false;
  }

(* --- batch and frame codecs ------------------------------------------------ *)

let encode_batch commands =
  let w = Util.Codec.W.create () in
  Util.Codec.W.varint w (List.length commands);
  List.iter (Util.Codec.W.bytes_lp w) commands;
  Util.Codec.W.contents w

let decode_batch raw =
  let r = Util.Codec.R.of_bytes raw in
  let count = Util.Codec.R.varint r in
  if count < 0 || count > Bytes.length raw then
    raise (Util.Codec.Malformed "batch count out of range");
  let commands = Util.Init.list count (fun _ -> Util.Codec.R.bytes_lp r) in
  Util.Codec.R.expect_end r;
  commands

let batch_digest batch = Crypto.Sha256.digest batch

(* encode_batch [] is the single byte varint-0 *)
let batch_is_empty batch = Bytes.length batch = 1 && Bytes.get batch 0 = '\000'

type frame =
  | Payload of { slot : int; digest : bytes; batch : bytes }
  | Echo of { slot : int; digest : bytes }
  | Ready of { slot : int; digest : bytes; batch : bytes option }
  | Pull of { slot : int }
      (* "I am stuck at [slot] — somebody re-ship its certificate, or
         tell me how it was decided." Without it a process that commits
         purely off consensus-phase traffic has no vote of its own to
         retransmit and no way to solicit the batch, and a process whose
         instance never decided has no way to learn the outcome once its
         peers retire the instance — either way the head stalls forever. *)
  | Outcome of { slot : int; committed : bool }
      (* a delivered slot's decision, answered to a Pull; f+1 matching
         claims from distinct senders contain an honest one, so a
         straggler can adopt the outcome without re-running consensus *)

let encode_payload_frame ~slot batch =
  let w = Util.Codec.W.create ~capacity:(48 + Bytes.length batch) () in
  Util.Codec.W.u8 w 0;
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w (batch_digest batch);
  Util.Codec.W.bytes_lp w batch;
  Util.Codec.W.contents w

let encode_echo_frame ~slot ~digest =
  let w = Util.Codec.W.create ~capacity:(40 + Bytes.length digest) () in
  Util.Codec.W.u8 w 1;
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w digest;
  Util.Codec.W.contents w

let encode_ready_frame ~slot ~digest batch =
  let attach_len = match batch with Some b -> Bytes.length b | None -> 0 in
  let w = Util.Codec.W.create ~capacity:(48 + Bytes.length digest + attach_len) () in
  Util.Codec.W.u8 w 2;
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w digest;
  (match batch with
  | Some b ->
      Util.Codec.W.u8 w 1;
      Util.Codec.W.bytes_lp w b
  | None -> Util.Codec.W.u8 w 0);
  Util.Codec.W.contents w

let encode_pull_frame ~slot =
  let w = Util.Codec.W.create ~capacity:16 () in
  Util.Codec.W.u8 w 3;
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w Bytes.empty;
  Util.Codec.W.contents w

let encode_outcome_frame ~slot ~committed =
  let w = Util.Codec.W.create ~capacity:16 () in
  Util.Codec.W.u8 w 4;
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w Bytes.empty;
  Util.Codec.W.u8 w (if committed then 1 else 0);
  Util.Codec.W.contents w

let decode_frame raw =
  let r = Util.Codec.R.of_bytes raw in
  let kind = Util.Codec.R.u8 r in
  let slot = Util.Codec.R.varint r in
  let digest = Util.Codec.R.bytes_lp r in
  let frame =
    match kind with
    | 0 ->
        let batch = Util.Codec.R.bytes_lp r in
        Payload { slot; digest; batch }
    | 1 -> Echo { slot; digest }
    | 2 ->
        let batch =
          match Util.Codec.R.u8 r with
          | 0 -> None
          | 1 -> Some (Util.Codec.R.bytes_lp r)
          | b -> raise (Util.Codec.Malformed (Printf.sprintf "ready attach flag %d" b))
        in
        Ready { slot; digest; batch }
    | 3 -> Pull { slot }
    | 4 -> (
        match Util.Codec.R.u8 r with
        | 0 -> Outcome { slot; committed = false }
        | 1 -> Outcome { slot; committed = true }
        | b -> raise (Util.Codec.Malformed (Printf.sprintf "outcome flag %d" b)))
    | k -> raise (Util.Codec.Malformed (Printf.sprintf "payload frame kind %d" k))
  in
  Util.Codec.R.expect_end r;
  frame

(* --- helpers ---------------------------------------------------------------- *)

let live t slot = slot >= t.pruned_below && slot >= 0 && slot < t.capacity

(* how many delivered-slot outcomes a single Pull answer covers. One
   pull per grace period recovering one slot would pace a straggler at
   [payload_grace] per slot — a process 50 slots behind would need
   minutes to rejoin. Answering a burst lets the claims cascade through
   the backlog as fast as the slots open. *)
let catchup_burst = 16

let bit_get bits slot = Char.code (Bytes.get bits (slot lsr 3)) land (1 lsl (slot land 7)) <> 0

let bit_set bits slot =
  Bytes.set bits (slot lsr 3)
    (Char.chr (Char.code (Bytes.get bits (slot lsr 3)) lor (1 lsl (slot land 7))))

let sub_tbl tbl slot =
  match Hashtbl.find_opt tbl slot with
  | Some inner -> inner
  | None ->
      let inner = Hashtbl.create 8 in
      Hashtbl.replace tbl slot inner;
      inner

let count_for inner digest =
  Hashtbl.fold (fun _ d acc -> if Bytes.equal d digest then acc + 1 else acc) inner 0

let trace t label slot =
  Obs.Trace2.emit ~time:(now t) ~node:(me t) ~layer:"log" ~label
    [ ("slot", Obs.Trace2.I slot) ]

(* --- the quiescent payload tick -------------------------------------------- *)

(* The tick only lives while there is timed work to do: a proposer
   rebroadcast grace, a committed-but-undelivered slot retrying its
   echo/ready, or a straggler to help. Once the tables drain the timer
   is not re-armed, so a finished log leaves zero live engine events. *)

let tick_work_pending t =
  Hashtbl.length t.rebroadcast > 0
  || Hashtbl.length t.retry > 0
  || Hashtbl.length t.help > 0
  || Hashtbl.length t.tell > 0

let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let rec ensure_tick t =
  if (not t.tick_armed) && tick_work_pending t then begin
    t.tick_armed <- true;
    ignore
      (Net.Node.set_timer t.node ~delay:t.cfg.Proto.tick_interval (fun () ->
           payload_tick t))
  end

and payload_tick t =
  t.tick_armed <- false;
  let time = now t in
  (* proposer rebroadcast within the grace window *)
  List.iter
    (fun slot ->
      match Hashtbl.find_opt t.rebroadcast slot with
      | Some until when time <= until -> begin
          match Hashtbl.find_opt t.payloads slot with
          | Some (batch, _) ->
              Net.Node.broadcast t.node ~port:t.payload_port
                (encode_payload_frame ~slot batch)
          | None -> Hashtbl.remove t.rebroadcast slot
        end
      | Some _ ->
          Hashtbl.remove t.rebroadcast slot;
          (* the grace was the only reason to keep an already-pruned
             slot's payload around *)
          if slot < t.pruned_below then Hashtbl.remove t.payloads slot
      | None -> ())
    (sorted_keys t.rebroadcast);
  (* committed-but-undelivered slots retry their echo/ready until the
     certificate and payload both arrive or the deadline passes — except
     the slot at the delivery head, which blocks everything behind it
     and therefore never stops soliciting (each retry pokes peers that
     already delivered it into re-shipping the certified payload) *)
  List.iter
    (fun slot ->
      match Hashtbl.find_opt t.retry slot with
      | Some until when slot < t.next_deliver || (time > until && slot > t.next_deliver)
        ->
          ignore until;
          Hashtbl.remove t.retry slot
      | Some _ ->
          (match Hashtbl.find_opt t.my_echo slot with
          | Some digest ->
              Net.Node.broadcast t.node ~port:t.payload_port
                (encode_echo_frame ~slot ~digest)
          | None -> ());
          (match Hashtbl.find_opt t.my_ready slot with
          | Some digest ->
              let attach =
                match Hashtbl.find_opt t.payloads slot with
                | Some (batch, d) when Bytes.equal d digest -> Some batch
                | Some _ | None -> None
              in
              Net.Node.broadcast t.node ~port:t.payload_port
                (encode_ready_frame ~slot ~digest attach)
          | None -> ());
          (* committed purely off consensus traffic: no echo or ready of
             our own to retransmit, so ask outright *)
          if
            (not (Hashtbl.mem t.my_echo slot))
            && not (Hashtbl.mem t.my_ready slot)
          then
            Net.Node.broadcast t.node ~port:t.payload_port (encode_pull_frame ~slot)
      | None -> ())
    (sorted_keys t.retry);
  (* answer stragglers once per mark: re-ship the certified payload of a
     slot we already delivered *)
  List.iter
    (fun slot ->
      Hashtbl.remove t.help slot;
      match (Hashtbl.find_opt t.certs slot, Hashtbl.find_opt t.payloads slot) with
      | Some digest, Some (batch, d) when Bytes.equal d digest ->
          Net.Node.broadcast t.node ~port:t.payload_port
            (encode_ready_frame ~slot ~digest (Some batch))
      | _ -> ())
    (sorted_keys t.help);
  (* tell stragglers how already-delivered slots were decided, once per
     ask; the outcome bit survives pruning so this works at any depth *)
  List.iter
    (fun slot ->
      Hashtbl.remove t.tell slot;
      if slot >= 0 && slot < t.next_deliver then
        Net.Node.broadcast t.node ~port:t.payload_port
          (encode_outcome_frame ~slot ~committed:(bit_get t.outcome_bits slot)))
    (sorted_keys t.tell);
  ensure_tick t

(* --- delivery, pruning ------------------------------------------------------ *)

let prune t =
  (* keep [help_retention] delivered slots of certificate state behind
     the cursor for straggler help; everything older goes away (only the
     1-bit outcome survives, for {!frame.Outcome} answers). A payload
     still inside its proposer rebroadcast grace survives until the
     grace expires (the tick removes it). *)
  let floor = t.next_deliver - t.help_retention in
  if floor > t.pruned_below then begin
    for slot = t.pruned_below to floor - 1 do
      Hashtbl.remove t.proposed slot;
      Hashtbl.remove t.echoes slot;
      Hashtbl.remove t.readys slot;
      Hashtbl.remove t.my_echo slot;
      Hashtbl.remove t.my_ready slot;
      Hashtbl.remove t.certs slot;
      Hashtbl.remove t.noops slot;
      Hashtbl.remove t.outcomes slot;
      Hashtbl.remove t.claims slot;
      Hashtbl.remove t.retry slot;
      Hashtbl.remove t.help slot;
      Hashtbl.remove t.tell slot;
      if not (Hashtbl.mem t.rebroadcast slot) then Hashtbl.remove t.payloads slot;
      Service.retire t.service ~instance:slot
    done;
    t.pruned_below <- floor
  end

(* Delivery, certificates and the slot lifecycle are one mutual
   recursion: delivering a slot advances the head, and the head is
   where the pacing timers live (see [arm_head]). *)

let propose_slot t ~slot bit =
  if not (Hashtbl.mem t.proposed slot) then begin
    Hashtbl.replace t.proposed slot ();
    Service.propose t.service ~instance:slot bit
  end

let rec flush_deliveries t =
  (match Hashtbl.find_opt t.outcomes t.next_deliver with
  | None -> ()
  | Some Committed_awaiting_payload ->
      (* blocked until the payload certifies; a deep slot may have let
         its retry lapse before reaching the head — revive it, the head
         retries until delivered *)
      if not (Hashtbl.mem t.retry t.next_deliver) then begin
        Hashtbl.replace t.retry t.next_deliver (now t +. t.payload_grace);
        (* a commit adopted purely off peers' outcome claims leaves us
           with no votes of our own to retransmit: solicit the
           certificate right away instead of waiting out the grace *)
        if
          (not (Hashtbl.mem t.my_echo t.next_deliver))
          && not (Hashtbl.mem t.my_ready t.next_deliver)
        then
          Net.Node.broadcast t.node ~port:t.payload_port
            (encode_pull_frame ~slot:t.next_deliver);
        ensure_tick t
      end
  | Some outcome ->
      let slot = t.next_deliver in
      let payload =
        match outcome with
        | Committed p -> Some p
        | Committed_awaiting_payload | Skipped -> None
      in
      t.next_deliver <- slot + 1;
      t.delivery_count <- t.delivery_count + 1;
      if payload <> None then bit_set t.outcome_bits slot;
      Hashtbl.remove t.retry slot;
      if t.retain_deliveries then t.deliveries <- (slot, payload) :: t.deliveries;
      trace t "deliver" slot;
      Obs.Metrics.incr "log.slot.delivered";
      (match t.deliver_cb with Some f -> f ~slot ~payload | None -> ());
      prune t;
      flush_deliveries t);
  arm_head t

(* a committed slot completes when the certified digest and a matching
   batch are both in hand *)
and maybe_complete_commit t ~slot =
  match Hashtbl.find_opt t.outcomes slot with
  | Some Committed_awaiting_payload -> begin
      match (Hashtbl.find_opt t.certs slot, Hashtbl.find_opt t.payloads slot) with
      | Some digest, Some (batch, d) when Bytes.equal d digest ->
          Hashtbl.replace t.outcomes slot (Committed batch);
          flush_deliveries t
      | _ -> ()
    end
  | Some (Committed _ | Skipped) | None -> ()

(* --- echo / ready certificates --------------------------------------------- *)

and record_echo t ~slot ~src ~digest =
  let inner = sub_tbl t.echoes slot in
  if not (Hashtbl.mem inner src) then begin
    Hashtbl.replace inner src digest;
    if
      (not (Hashtbl.mem t.my_ready slot))
      && Proto.quorum_exceeded t.cfg (count_for inner digest)
    then send_ready t ~slot ~digest
  end

and send_echo t ~slot ~digest =
  if not (Hashtbl.mem t.my_echo slot) then begin
    Hashtbl.replace t.my_echo slot digest;
    Net.Node.broadcast t.node ~port:t.payload_port (encode_echo_frame ~slot ~digest);
    record_echo t ~slot ~src:(me t) ~digest
  end

and send_ready t ~slot ~digest =
  if not (Hashtbl.mem t.my_ready slot) then begin
    Hashtbl.replace t.my_ready slot digest;
    let attach =
      match Hashtbl.find_opt t.payloads slot with
      | Some (batch, d) when Bytes.equal d digest -> Some batch
      | Some _ | None -> None
    in
    Net.Node.broadcast t.node ~port:t.payload_port
      (encode_ready_frame ~slot ~digest attach);
    record_ready t ~slot ~src:(me t) ~digest
  end

and record_ready t ~slot ~src ~digest =
  let inner = sub_tbl t.readys slot in
  if not (Hashtbl.mem inner src) then begin
    Hashtbl.replace inner src digest;
    let count = count_for inner digest in
    if Proto.past_faulty t.cfg count then send_ready t ~slot ~digest;
    if Proto.past_double_faulty t.cfg count && not (Hashtbl.mem t.certs slot) then begin
      Hashtbl.replace t.certs slot digest;
      Obs.Metrics.incr "log.payload.certified";
      maybe_complete_commit t ~slot
    end
  end

(* --- slot lifecycle --------------------------------------------------------- *)

and open_slots t =
  if t.next_open < t.capacity && t.open_undecided < t.window then begin
    let slot = t.next_open in
    t.next_open <- slot + 1;
    t.open_undecided <- t.open_undecided + 1;
    open_one t slot;
    open_slots t
  end

and fill_slot t slot =
  (* drain a batch into my open slot, bind its digest, broadcast, vote 1;
     with nothing to send, announce an explicit no-op instead so peers
     skip the slot at consensus speed rather than waiting out the crash
     deadline *)
  let commands = ref [] in
  while List.length !commands < t.max_batch && not (Queue.is_empty t.pending) do
    commands := Queue.pop t.pending :: !commands
  done;
  let commands = List.rev !commands in
  if commands = [] then begin
    Net.Node.broadcast t.node ~port:t.payload_port
      (encode_payload_frame ~slot (encode_batch []));
    trace t "noop" slot;
    propose_slot t ~slot 0
  end
  else begin
    let batch = encode_batch commands in
    let digest = batch_digest batch in
    Hashtbl.replace t.payloads slot (batch, digest);
    Hashtbl.replace t.rebroadcast slot (now t +. t.payload_grace);
    Net.Node.broadcast t.node ~port:t.payload_port (encode_payload_frame ~slot batch);
    send_echo t ~slot ~digest;
    Obs.Metrics.incr "log.batch.slots";
    Obs.Metrics.incr ~by:(List.length commands) "log.batch.commands";
    ensure_tick t;
    propose_slot t ~slot 1
  end

and open_one t slot =
  (* a pull burst may already hold f+1 claims for this slot: adopt
     before spending a proposal on a dead instance *)
  maybe_adopt_claim t ~slot;
  if not (Hashtbl.mem t.outcomes slot) then begin
    (if proposer_of t slot = me t then begin
       if not (Queue.is_empty t.pending) then fill_slot t slot
       (* else: hold the slot open, timer-free, until traffic arrives
          for it or it reaches the head of the log *)
     end
     else if Hashtbl.mem t.payloads slot then propose_slot t ~slot 1
     else if Hashtbl.mem t.noops slot then propose_slot t ~slot 0);
    (* arm unconditionally when opening at the head: a slot already
       proposed on open still needs the watch timer — its instance may
       be long dead at peers that decided, delivered and retired it *)
    if slot = t.next_deliver then arm_head t
  end

(* Pacing timers attach only to the slot at the delivery head. Deeper
   slots in the window wait for demand with no timers at all — arming
   every open slot at once would burn the log [window] slots at a time
   while idle, and the concurrent no-op instances would congest the
   shared medium for the slots carrying real traffic. At the head: an
   idle proposer announces an explicit no-op after [noop_wait]; a
   non-proposer starts the [payload_wait] crash deadline and votes for
   whatever it holds when the deadline passes. *)
and arm_head t =
  let slot = t.next_deliver in
  if
    t.started && slot < t.next_open && live t slot && t.head_armed <> slot
    && not (Hashtbl.mem t.outcomes slot)
  then begin
    t.head_armed <- slot;
    let still_open () =
      live t slot
      && (not (Hashtbl.mem t.proposed slot))
      && not (Hashtbl.mem t.outcomes slot)
    in
    if not (Hashtbl.mem t.proposed slot) then
      if proposer_of t slot = me t then
        ignore
          (Net.Node.set_timer t.node ~delay:t.noop_wait (fun () ->
               if still_open () then fill_slot t slot))
      else
        ignore
          (Net.Node.set_timer t.node ~delay:t.payload_wait (fun () ->
               if still_open () then
                 propose_slot t ~slot (if Hashtbl.mem t.payloads slot then 1 else 0)));
    watch_head t ~slot
  end

(* A head that stays undecided for a whole grace period has usually
   lost its peers: they collected a quorum without us, delivered,
   retired the instance and moved on — nobody is left to make our own
   instance decide. Ask for the outcome explicitly, and keep asking
   until the head moves. *)
and watch_head t ~slot =
  ignore
    (Net.Node.set_timer t.node ~delay:t.payload_grace (fun () ->
         if t.next_deliver = slot && live t slot && not (Hashtbl.mem t.outcomes slot)
         then begin
           Net.Node.broadcast t.node ~port:t.payload_port (encode_pull_frame ~slot);
           watch_head t ~slot
         end))

(* f+1 matching outcome claims for an undecided slot contain at least
   one honest deliverer: adopt the decision. This is how a process that
   lost an entire instance (its peers formed quorums without it) rejoins
   the log without re-running dead consensus. Claims are collected for
   any slot not yet delivered — peers answer a pull with a burst of
   outcomes well past our window — but acted on only once the slot is
   open, so the adoption cascades slot by slot as the cursor advances. *)
and record_claim t ~slot ~src ~committed =
  if
    t.started && live t slot && slot >= t.next_deliver
    && not (Hashtbl.mem t.outcomes slot)
  then begin
    let inner = sub_tbl t.claims slot in
    if not (Hashtbl.mem inner src) then begin
      Hashtbl.replace inner src committed;
      maybe_adopt_claim t ~slot
    end
  end

and maybe_adopt_claim t ~slot =
  if
    t.started && live t slot && slot >= t.next_deliver && slot < t.next_open
    && not (Hashtbl.mem t.outcomes slot)
  then
    match Hashtbl.find_opt t.claims slot with
    | None -> ()
    | Some inner ->
        let matching committed =
          Hashtbl.fold (fun _ c acc -> if c = committed then acc + 1 else acc) inner 0
        in
        let adopt committed =
          Obs.Metrics.incr "log.outcome.adopted";
          close_slot t ~slot ~value:(if committed then 1 else 0)
        in
        if Proto.past_faulty t.cfg (matching true) then adopt true
        else if Proto.past_faulty t.cfg (matching false) then adopt false

and close_slot t ~slot ~value =
  if not (Hashtbl.mem t.outcomes slot) then begin
    t.open_undecided <- t.open_undecided - 1;
    (if value = 1 then begin
       trace t "commit" slot;
       Obs.Metrics.incr "log.slot.committed";
       Hashtbl.replace t.outcomes slot Committed_awaiting_payload;
       maybe_complete_commit t ~slot;
       (* still awaiting the certificate or the bytes: retry my votes
          every tick for a grace period *)
       match Hashtbl.find_opt t.outcomes slot with
       | Some Committed_awaiting_payload ->
           Hashtbl.replace t.retry slot (now t +. t.payload_grace);
           (* committed without votes of our own — the slot closed off
              peers' outcome claims, not our certificate exchange — so
              ask for the certificate and bytes without waiting for the
              retry deadline *)
           if
             (not (Hashtbl.mem t.my_echo slot))
             && not (Hashtbl.mem t.my_ready slot)
           then
             Net.Node.broadcast t.node ~port:t.payload_port
               (encode_pull_frame ~slot);
           ensure_tick t
       | Some (Committed _ | Skipped) | None -> ()
     end
     else begin
       trace t "skip" slot;
       Obs.Metrics.incr "log.slot.skipped";
       (* my own batch did not reach a quorum in time: requeue its
          commands at the front so the submissions are not lost *)
       (if proposer_of t slot = me t then
          match Hashtbl.find_opt t.payloads slot with
          | Some (batch, _) -> begin
              Hashtbl.remove t.payloads slot;
              Hashtbl.remove t.rebroadcast slot;
              match decode_batch batch with
              | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
              | commands ->
                  let requeued = Queue.create () in
                  List.iter (fun c -> Queue.add c requeued) commands;
                  Queue.transfer t.pending requeued;
                  Queue.transfer requeued t.pending
            end
          | None -> ());
       Hashtbl.replace t.outcomes slot Skipped;
       flush_deliveries t
     end);
    open_slots t;
    (* requeued commands (and any still pending) take the freshest open
       slots of mine immediately *)
    absorb_pending t
  end

(* A command arriving while one of my slots is open but still
   unproposed fills that slot right away, instead of waiting for my
   next turn — this is what lets an open-loop workload use slots at
   the rate traffic actually arrives. *)
and absorb_pending t =
  if t.started then
    for slot = t.next_deliver to t.next_open - 1 do
      if
        (not (Queue.is_empty t.pending))
        && proposer_of t slot = me t && live t slot
        && (not (Hashtbl.mem t.proposed slot))
        && (not (Hashtbl.mem t.outcomes slot))
        && not (Hashtbl.mem t.payloads slot)
      then fill_slot t slot
    done

let submit t payload =
  Queue.add payload t.pending;
  absorb_pending t

(* --- frame handling --------------------------------------------------------- *)

let mark_help t ~slot =
  if
    slot < t.next_deliver && slot >= t.pruned_below
    && Hashtbl.mem t.certs slot
    && Hashtbl.mem t.payloads slot
  then begin
    Hashtbl.replace t.help slot ();
    ensure_tick t
  end

let mark_tell t ~slot =
  if slot >= 0 && slot < t.next_deliver then begin
    Hashtbl.replace t.tell slot ();
    ensure_tick t
  end

let accept_payload t ~slot ~digest ~batch =
  Hashtbl.replace t.payloads slot (batch, digest);
  send_echo t ~slot ~digest;
  maybe_complete_commit t ~slot;
  (* an already-open slot we had not voted on yet *)
  if slot < t.next_open then propose_slot t ~slot 1

let handle_frame t ~src raw =
  match decode_frame raw with
  | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
  | Payload { slot; digest; batch } ->
      if live t slot && Bytes.equal digest (batch_digest batch) then begin
        if src = proposer_of t slot then begin
          if batch_is_empty batch then begin
            Hashtbl.replace t.noops slot ();
            if slot < t.next_open then propose_slot t ~slot 0
          end
          else if not (Hashtbl.mem t.payloads slot) then
            accept_payload t ~slot ~digest ~batch
        end
        else begin
          (* not the slot's proposer: only adopt content the group has
             already vouched for (certificate, or f+1 READYs) *)
          let vouched =
            match Hashtbl.find_opt t.certs slot with
            | Some certified -> Bytes.equal certified digest
            | None -> (
                match Hashtbl.find_opt t.readys slot with
                | Some inner -> Proto.past_faulty t.cfg (count_for inner digest)
                | None -> false)
          in
          let held_matches =
            match Hashtbl.find_opt t.payloads slot with
            | Some (_, d) -> Bytes.equal d digest
            | None -> false
          in
          if vouched && not held_matches then accept_payload t ~slot ~digest ~batch
          else if not vouched then begin
            trace t "forged" slot;
            Obs.Metrics.incr "log.payload.forged"
          end
        end
      end
  | Echo { slot; digest } ->
      if live t slot then begin
        record_echo t ~slot ~src ~digest;
        mark_help t ~slot
      end
  | Ready { slot; digest; batch } ->
      if live t slot then begin
        record_ready t ~slot ~src ~digest;
        (match batch with
        | Some b when Bytes.equal digest (batch_digest b) ->
            let backed =
              match Hashtbl.find_opt t.certs slot with
              | Some certified -> Bytes.equal certified digest
              | None -> (
                  match Hashtbl.find_opt t.readys slot with
                  | Some inner -> Proto.past_faulty t.cfg (count_for inner digest)
                  | None -> false)
            in
            let held_matches =
              match Hashtbl.find_opt t.payloads slot with
              | Some (_, d) -> Bytes.equal d digest
              | None -> false
            in
            if backed && not held_matches then
              accept_payload t ~slot ~digest ~batch:b
        | Some _ | None -> ());
        (* only a bare READY signals need — a READY carrying the batch
           is itself a help response, and answering it in kind would
           ping-pong forever *)
        if batch = None then mark_help t ~slot
      end
  | Pull { slot } ->
      mark_help t ~slot;
      (* answer with a burst of outcomes, not just the asked slot: the
         puller is likely behind by much more than one, and each frame
         is a few bytes *)
      for s = slot to min t.next_deliver (slot + catchup_burst) - 1 do
        mark_tell t ~slot:s
      done
  | Outcome { slot; committed } -> record_claim t ~slot ~src ~committed

let start t =
  if not t.started then begin
    t.started <- true;
    Service.on_decide t.service (fun ~instance ~value ->
        close_slot t ~slot:instance ~value);
    Net.Node.listen t.node ~port:t.payload_port (fun ~src raw -> handle_frame t ~src raw);
    open_slots t
  end
