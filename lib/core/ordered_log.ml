(* Payload frames travel on [payload_port]; slot s's consensus instance
   runs on [base_port + s] through the shared Service. Slots open
   strictly sequentially at each process, so decisions (and deliveries)
   are locally in order; a committed slot whose payload is still missing
   blocks delivery until a retransmission arrives (the proposer keeps
   rebroadcasting for a grace period after its slot closes). *)

type slot_outcome = Committed of bytes | Committed_awaiting_payload | Skipped

type t = {
  node : Net.Node.t;
  cfg : Proto.config;
  service : Service.t;
  capacity : int;
  payload_wait : float;
  payload_port : int;
  pending : bytes Queue.t;                    (* my submissions *)
  proposed : (int, unit) Hashtbl.t;           (* slots we already voted on *)
  payloads : (int, bytes) Hashtbl.t;          (* slot -> received payload *)
  outcomes : (int, slot_outcome) Hashtbl.t;   (* decided slots *)
  mutable slot : int;                          (* slot currently open here *)
  mutable next_deliver : int;
  mutable deliveries : (int * bytes option) list;  (* newest first *)
  mutable deliver_cb : (slot:int -> payload:bytes option -> unit) option;
  mutable my_payload_until : (int * float) option; (* rebroadcast grace *)
  mutable started : bool;
}

let n t = t.cfg.Proto.n
let me t = Net.Node.id t.node
let proposer_of t slot = slot mod n t
let current_slot t = t.slot
let on_deliver t f = t.deliver_cb <- Some f
let delivered t = List.rev t.deliveries
let submit t payload = Queue.add payload t.pending

let create node cfg ~keyring ~capacity ?(payload_wait = 0.050) ?(base_port = 15000) () =
  if capacity < 1 then invalid_arg "Ordered_log.create: capacity must be positive";
  (* short linger: with many sequential instances the default 50-tick
     tail traffic of each decided slot would congest the next ones *)
  let service =
    Service.create node cfg ~keyring ~instances:capacity ~base_port ~linger_ticks:10 ()
  in
  {
    node;
    cfg;
    service;
    capacity;
    payload_wait;
    payload_port = base_port - 1;
    pending = Queue.create ();
    proposed = Hashtbl.create 32;
    payloads = Hashtbl.create 32;
    outcomes = Hashtbl.create 32;
    slot = 0;
    next_deliver = 0;
    deliveries = [];
    deliver_cb = None;
    my_payload_until = None;
    started = false;
  }

let encode_payload ~slot payload =
  let w = Util.Codec.W.create ~capacity:(8 + Bytes.length payload) () in
  Util.Codec.W.varint w slot;
  Util.Codec.W.bytes_lp w payload;
  Util.Codec.W.contents w

let decode_payload raw =
  let r = Util.Codec.R.of_bytes raw in
  let slot = Util.Codec.R.varint r in
  let payload = Util.Codec.R.bytes_lp r in
  Util.Codec.R.expect_end r;
  (slot, payload)

let rec flush_deliveries t =
  match Hashtbl.find_opt t.outcomes t.next_deliver with
  | None -> ()
  | Some Committed_awaiting_payload -> () (* blocked until the payload arrives *)
  | Some outcome ->
      let slot = t.next_deliver in
      let payload = match outcome with Committed p -> Some p | Committed_awaiting_payload | Skipped -> None in
      t.deliveries <- (slot, payload) :: t.deliveries;
      t.next_deliver <- slot + 1;
      (match t.deliver_cb with Some f -> f ~slot ~payload | None -> ());
      flush_deliveries t

let record_outcome t ~slot outcome =
  if not (Hashtbl.mem t.outcomes slot) then begin
    Hashtbl.replace t.outcomes slot outcome;
    flush_deliveries t
  end

(* the proposer rebroadcasts its payload every tick while relevant *)
let rec payload_tick t =
  (match t.my_payload_until with
  | Some (slot, until) when Net.Engine.now (Net.Node.engine t.node) <= until -> begin
      match Hashtbl.find_opt t.payloads slot with
      | Some payload ->
          Net.Node.broadcast t.node ~port:t.payload_port (encode_payload ~slot payload)
      | None -> ()
    end
  | Some _ | None -> ());
  ignore
    (Net.Node.set_timer t.node ~delay:t.cfg.tick_interval (fun () -> payload_tick t))

let propose_slot t ~slot bit =
  if not (Hashtbl.mem t.proposed slot) then begin
    Hashtbl.replace t.proposed slot ();
    Service.propose t.service ~instance:slot bit
  end

let rec open_slot t slot =
  if slot < t.capacity then begin
    t.slot <- slot;
    if proposer_of t slot = me t && not (Queue.is_empty t.pending) then begin
      (* my slot and I have something to say: broadcast and vote 1 *)
      let payload = Queue.pop t.pending in
      Hashtbl.replace t.payloads slot payload;
      t.my_payload_until <-
        Some (slot, Net.Engine.now (Net.Node.engine t.node) +. 2.0);
      Net.Node.broadcast t.node ~port:t.payload_port (encode_payload ~slot payload);
      propose_slot t ~slot 1
    end
    else if Hashtbl.mem t.payloads slot then propose_slot t ~slot 1
    else begin
      (* wait for the payload; propose whatever we hold at the deadline *)
      ignore
        (Net.Node.set_timer t.node ~delay:t.payload_wait (fun () ->
             if t.slot = slot then
               propose_slot t ~slot (if Hashtbl.mem t.payloads slot then 1 else 0)))
    end
  end

and close_slot t ~slot ~value =
  (if value = 1 then begin
     match Hashtbl.find_opt t.payloads slot with
     | Some payload -> record_outcome t ~slot (Committed payload)
     | None ->
         (* committed but content still in flight *)
         Hashtbl.replace t.outcomes slot Committed_awaiting_payload
   end
   else begin
     (* my own payload did not reach a quorum in time: requeue it for my
        next slot so the submission is not silently lost *)
     if proposer_of t slot = me t then begin
       match Hashtbl.find_opt t.payloads slot with
       | Some payload ->
           Hashtbl.remove t.payloads slot;
           let requeued = Queue.create () in
           Queue.add payload requeued;
           Queue.transfer t.pending requeued;
           Queue.transfer requeued t.pending
       | None -> ()
     end;
     record_outcome t ~slot Skipped
   end);
  if slot = t.slot then open_slot t (slot + 1)

let handle_payload t raw =
  match decode_payload raw with
  | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
  | slot, payload ->
      if slot >= 0 && slot < t.capacity && not (Hashtbl.mem t.payloads slot) then begin
        Hashtbl.replace t.payloads slot payload;
        (* a committed slot that was waiting for this content *)
        (match Hashtbl.find_opt t.outcomes slot with
        | Some Committed_awaiting_payload ->
            Hashtbl.replace t.outcomes slot (Committed payload);
            flush_deliveries t
        | Some (Committed _ | Skipped) | None -> ());
        (* an open slot we had not voted on yet *)
        if slot = t.slot then propose_slot t ~slot 1
      end

let start t =
  if not t.started then begin
    t.started <- true;
    Service.on_decide t.service (fun ~instance ~value -> close_slot t ~slot:instance ~value);
    Net.Node.listen t.node ~port:t.payload_port (fun ~src:_ raw -> handle_payload t raw);
    payload_tick t;
    open_slot t 0
  end
