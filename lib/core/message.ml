type t = {
  sender : int;
  phase : int;
  value : Proto.value;
  origin : Proto.origin;
  status : Proto.status;
  proof : bytes;
}

let slot_of ~value ~origin =
  match (value, origin) with
  | Proto.Vbot, _ -> Crypto.Onetime_sig.S_bot
  | Proto.V0, Proto.Deterministic -> Crypto.Onetime_sig.S_zero
  | Proto.V1, Proto.Deterministic -> Crypto.Onetime_sig.S_one
  | Proto.V0, Proto.Random -> Crypto.Onetime_sig.S_rand_zero
  | Proto.V1, Proto.Random -> Crypto.Onetime_sig.S_rand_one

let header_equal a b =
  a.sender = b.sender && a.phase = b.phase
  && Proto.value_equal a.value b.value
  && a.origin = b.origin && a.status = b.status

let describe m =
  Printf.sprintf "<%d, phi=%d, v=%s%s, %s>" m.sender m.phase
    (Proto.value_to_string m.value)
    (match m.origin with Proto.Random -> "(coin)" | Proto.Deterministic -> "")
    (match m.status with Proto.Decided -> "decided" | Proto.Undecided -> "undecided")

type envelope = { msg : t; justification : t list }

let write_msg w m =
  Util.Codec.W.u16 w m.sender;
  Util.Codec.W.varint w m.phase;
  Util.Codec.W.u8 w (Proto.value_to_int m.value);
  Util.Codec.W.u8 w (match m.origin with Proto.Deterministic -> 0 | Proto.Random -> 1);
  Util.Codec.W.u8 w (match m.status with Proto.Undecided -> 0 | Proto.Decided -> 1);
  Util.Codec.W.bytes_lp w m.proof

let read_msg r =
  let sender = Util.Codec.R.u16 r in
  let phase = Util.Codec.R.varint r in
  if phase < 1 then raise (Util.Codec.Malformed "message phase < 1");
  let value = Proto.value_of_int (Util.Codec.R.u8 r) in
  let origin =
    match Util.Codec.R.u8 r with
    | 0 -> Proto.Deterministic
    | 1 -> Proto.Random
    | _ -> raise (Util.Codec.Malformed "invalid origin")
  in
  let status =
    match Util.Codec.R.u8 r with
    | 0 -> Proto.Undecided
    | 1 -> Proto.Decided
    | _ -> raise (Util.Codec.Malformed "invalid status")
  in
  let proof = Util.Codec.R.bytes_lp r in
  { sender; phase; value; origin; status; proof }

let msg_to_bytes m = Util.Codec.W.with_scratch (fun w -> write_msg w m)

let msg_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let m = read_msg r in
  Util.Codec.R.expect_end r;
  m

let digest_bytes = 8

let msg_digest m = Bytes.sub (Crypto.Sha256.digest (msg_to_bytes m)) 0 digest_bytes

(* Wire formats. A frame starts with a format byte:
   0 — plain: the message followed by full justification entries;
   1 — compact: each justification entry is tagged, either a full
       message or an 8-byte truncated content digest of one the sender
       already shipped this phase (delta compression, resolved against
       the receiver's content-addressed cache).
   Compact encoding falls back to format 0 whenever every entry is
   full, so plain traffic pays only the format byte. *)

type entry = Full of t | Ref of bytes

type wire = { wmsg : t; wjust : entry list }

let encode_wire wi =
  let all_full = List.for_all (function Full _ -> true | Ref _ -> false) wi.wjust in
  Util.Codec.W.with_scratch (fun w ->
      Util.Codec.W.u8 w (if all_full then 0 else 1);
      write_msg w wi.wmsg;
      Util.Codec.W.u16 w (List.length wi.wjust);
      List.iter
        (fun entry ->
          match entry with
          | Full m ->
              if not all_full then Util.Codec.W.u8 w 0;
              write_msg w m
          | Ref d ->
              assert (Bytes.length d = digest_bytes);
              Util.Codec.W.u8 w 1;
              Util.Codec.W.bytes w d)
        wi.wjust)

let decode_wire b =
  let r = Util.Codec.R.of_bytes b in
  let format =
    match Util.Codec.R.u8 r with
    | (0 | 1) as f -> f
    | f -> raise (Util.Codec.Malformed (Printf.sprintf "unknown frame format %d" f))
  in
  let wmsg = read_msg r in
  let count = Util.Codec.R.u16 r in
  (* the closure advances the reader: application order must be pinned *)
  let wjust =
    Util.Init.list count (fun _ ->
        if format = 0 then Full (read_msg r)
        else
          match Util.Codec.R.u8 r with
          | 0 -> Full (read_msg r)
          | 1 -> Ref (Util.Codec.R.bytes r digest_bytes)
          | t -> raise (Util.Codec.Malformed (Printf.sprintf "unknown entry tag %d" t)))
  in
  Util.Codec.R.expect_end r;
  { wmsg; wjust }

let encode env =
  encode_wire { wmsg = env.msg; wjust = List.map (fun m -> Full m) env.justification }

let decode b =
  let wi = decode_wire b in
  let justification =
    List.map
      (function
        | Full m -> m
        | Ref _ -> raise (Util.Codec.Malformed "unresolved compact reference"))
      wi.wjust
  in
  { msg = wi.wmsg; justification }

let encoded_size env = Bytes.length (encode env)
