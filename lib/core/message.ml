type t = {
  sender : int;
  phase : int;
  value : Proto.value;
  origin : Proto.origin;
  status : Proto.status;
  proof : bytes;
}

let slot_of ~value ~origin =
  match (value, origin) with
  | Proto.Vbot, _ -> Crypto.Onetime_sig.S_bot
  | Proto.V0, Proto.Deterministic -> Crypto.Onetime_sig.S_zero
  | Proto.V1, Proto.Deterministic -> Crypto.Onetime_sig.S_one
  | Proto.V0, Proto.Random -> Crypto.Onetime_sig.S_rand_zero
  | Proto.V1, Proto.Random -> Crypto.Onetime_sig.S_rand_one

let header_equal a b =
  a.sender = b.sender && a.phase = b.phase
  && Proto.value_equal a.value b.value
  && a.origin = b.origin && a.status = b.status

let describe m =
  Printf.sprintf "<%d, phi=%d, v=%s%s, %s>" m.sender m.phase
    (Proto.value_to_string m.value)
    (match m.origin with Proto.Random -> "(coin)" | Proto.Deterministic -> "")
    (match m.status with Proto.Decided -> "decided" | Proto.Undecided -> "undecided")

type envelope = { msg : t; justification : t list }

let write_msg w m =
  Util.Codec.W.u16 w m.sender;
  Util.Codec.W.varint w m.phase;
  Util.Codec.W.u8 w (Proto.value_to_int m.value);
  Util.Codec.W.u8 w (match m.origin with Proto.Deterministic -> 0 | Proto.Random -> 1);
  Util.Codec.W.u8 w (match m.status with Proto.Undecided -> 0 | Proto.Decided -> 1);
  Util.Codec.W.bytes_lp w m.proof

let read_msg r =
  let sender = Util.Codec.R.u16 r in
  let phase = Util.Codec.R.varint r in
  if phase < 1 then raise (Util.Codec.Malformed "message phase < 1");
  let value = Proto.value_of_int (Util.Codec.R.u8 r) in
  let origin =
    match Util.Codec.R.u8 r with
    | 0 -> Proto.Deterministic
    | 1 -> Proto.Random
    | _ -> raise (Util.Codec.Malformed "invalid origin")
  in
  let status =
    match Util.Codec.R.u8 r with
    | 0 -> Proto.Undecided
    | 1 -> Proto.Decided
    | _ -> raise (Util.Codec.Malformed "invalid status")
  in
  let proof = Util.Codec.R.bytes_lp r in
  { sender; phase; value; origin; status; proof }

let encode env =
  Util.Codec.W.with_scratch (fun w ->
      write_msg w env.msg;
      Util.Codec.W.u16 w (List.length env.justification);
      List.iter (write_msg w) env.justification)

let decode b =
  let r = Util.Codec.R.of_bytes b in
  let msg = read_msg r in
  let count = Util.Codec.R.u16 r in
  (* the closure advances the reader: application order must be pinned *)
  let justification = Util.Init.list count (fun _ -> read_msg r) in
  Util.Codec.R.expect_end r;
  { msg; justification }

let encoded_size env = Bytes.length (encode env)

let msg_to_bytes m = Util.Codec.W.with_scratch (fun w -> write_msg w m)

let msg_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let m = read_msg r in
  Util.Codec.R.expect_end r;
  m
