type t = {
  service : Service.t;
  n : int;
  alive : int -> bool;
  mutable current : int;  (* candidate under consideration *)
  mutable elected : int option;
  mutable elect_cb : (leader:int -> unit) option;
  mutable started : bool;
}

let create node cfg ~keyring ~alive ?(base_port = 12000) () =
  let n = cfg.Proto.n in
  let service = Service.create node cfg ~keyring ~instances:n ~base_port () in
  { service; n; alive; current = 0; elected = None; elect_cb = None; started = false }

let leader t = t.elected
let rounds_used t = if t.elected = None then t.current else t.current + 1
let on_elect t f = t.elect_cb <- Some f

let settle t leader =
  if t.elected = None then begin
    t.elected <- Some leader;
    match t.elect_cb with Some f -> f ~leader | None -> ()
  end

let consider t candidate =
  if candidate >= t.n then settle t (-1)
  else begin
    t.current <- candidate;
    Service.propose t.service ~instance:candidate (if t.alive candidate then 1 else 0)
  end

let start t =
  if not t.started then begin
    t.started <- true;
    Service.on_decide t.service (fun ~instance ~value ->
        (* decisions for past candidates may straggle in; only the
           instance currently under consideration advances the scan *)
        if t.elected = None && instance = t.current then begin
          if value = 1 then settle t instance else consider t (instance + 1)
        end);
    consider t 0
  end
