(* Per-run flat message store: every distinct message interned once.

   The radio fan-out already shares one decoded [Message.t] per frame
   across receivers, but justification bundles re-embed the same
   messages in many different frames, so each receiver used to hold a
   private structurally-equal copy (header plus 32 proof bytes) per
   bundle appearance. Interning collapses them: [Vset] rows store
   compact indices into this append-only store instead of message
   pointers, and structurally equal messages map to one index — the
   lib/scale [Arena] idea applied to protocol messages, without the
   free list (consensus messages are never released inside a run).

   The store is domain-local and re-bound (not reset in place) at every
   run boundary: a [Vset] captures the store object at creation time,
   so sets that outlive their run scope — the model checker clones
   machines across enumeration branches — keep resolving against the
   store they were built on while new runs start from an empty one.
   Indices are private to the capturing structures and never compared
   across stores. *)

type t = {
  mutable slots : Message.t array;
  mutable len : int;
  index : (Message.t, int) Hashtbl.t;
      (* structural hash/equality cover every field including the proof
         bytes, so two messages differing anywhere intern separately *)
}

let create () = { slots = [||]; len = 0; index = Hashtbl.create 256 }

let size t = t.len

let get t idx =
  if idx < 1 || idx > t.len then invalid_arg "Msgstore.get: index out of range";
  t.slots.(idx - 1)

(* Indices are 1-based so that 0 stays free as the "empty slot" marker
   of the flat Vset rows. *)
let intern t (m : Message.t) =
  match Hashtbl.find_opt t.index m with
  | Some idx -> idx
  | None ->
      if t.len = Array.length t.slots then begin
        let cap = max 64 (2 * Array.length t.slots) in
        let slots = Array.make cap m in
        Array.blit t.slots 0 slots 0 t.len;
        t.slots <- slots
      end;
      t.slots.(t.len) <- m;
      t.len <- t.len + 1;
      Hashtbl.add t.index m t.len;
      t.len

let store_key : t Domain.DLS.key = Domain.DLS.new_key create
let current () = Domain.DLS.get store_key
let () = Obs.Scope.at_run_start (fun () -> Domain.DLS.set store_key (create ()))
