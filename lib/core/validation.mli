(** Semantic validation of messages (paper Section 6.2).

    A message is semantically valid when each of its three state
    variables — phase, proposal value, status — is congruent with some
    execution of the algorithm, as witnessed by previously validated
    messages. All checks count distinct senders in the caller's V set;
    thresholds are the paper's: more than (n+f)/2, written [Q], and more
    than ((n+f)/2)/2, written [Q/2], per phase as follows.

    - phase φ: φ = 1, or [Q] messages at φ−1;
    - value, φ = 1: v ∈ {0,1}, deterministic — always valid;
    - value, LOCK message (φ mod 3 = 2): v ∈ {0,1} with [Q/2] support
      at φ−1;
    - value, DECIDE message (φ mod 3 = 0): v ∈ {0,1} with [Q] support
      at φ−1, or ⊥ with [Q/2] support for each of 0 and 1 at φ−2;
    - value, CONVERGE message (φ mod 3 = 1, φ > 1): deterministic v
      with [Q] support at φ−2, or coin-flip v with [Q] ⊥-messages at
      φ−1;
    - status: undecided is free for φ ≤ 3, and for φ > 3 needs a
      0/1 split of [Q/2] each at the highest LOCK phase below φ;
      decided needs φ > 3, v ∈ {0,1} and [Q] support for v at some
      DECIDE phase φ₀ ≤ φ. *)

type verdict = Valid | Invalid of string
(** [Invalid reason] carries the failed rule, for traces and tests. *)

val check_phase : Proto.config -> Vset.t -> Message.t -> verdict
val check_value : Proto.config -> Vset.t -> Message.t -> verdict
val check_status : Proto.config -> Vset.t -> Message.t -> verdict

val semantic_check : Proto.config -> Vset.t -> Message.t -> verdict
(** Conjunction of the three; first failure wins. *)

val is_valid : Proto.config -> Vset.t -> Message.t -> bool

val highest_lock_phase_below : int -> int
(** The φ′ of the undecided-status rule: largest φ′ < φ with
    φ′ mod 3 = 2; 0 when none exists (φ ≤ 2). *)

val highest_decide_phase_below : int -> int
(** Largest DECIDE phase (mod 3 = 0) strictly below φ; 0 when none. *)
