(** Order-pinned replacements for [Array.init] and [List.init].

    The stdlib versions apply their closure in an unspecified order, so
    a side-effecting closure — reading an RNG stream, advancing a codec
    cursor — can fill the container with values whose assignment to
    indices depends on the compiler. Every side-effecting init in this
    repository goes through these instead: [f] is applied to
    [0, 1, ..., n-1] in ascending order, guaranteed. *)

val array : int -> (int -> 'a) -> 'a array
(** @raise Invalid_argument on a negative length. *)

val list : int -> (int -> 'a) -> 'a list
(** @raise Invalid_argument on a negative length. *)
