(** Binary encoding and decoding of protocol messages.

    All on-the-wire structures in the repository are serialized with this
    module so that simulated frame sizes reflect real encodings. Integers
    are little-endian; variable-length fields are length-prefixed. *)

exception Truncated
(** Raised by readers when the buffer ends before the requested field. *)

exception Malformed of string
(** Raised when a decoded value violates its declared domain. *)

(** Append-only byte buffer writer. *)
module W : sig
  type t

  val create : ?capacity:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val varint : t -> int -> unit
  (** LEB128-style unsigned varint; compact phase numbers. *)

  val bytes : t -> bytes -> unit
  (** Raw bytes, no length prefix. *)

  val bytes_lp : t -> bytes -> unit
  (** u32 length prefix followed by the bytes. *)

  val string_lp : t -> string -> unit
  val length : t -> int
  val contents : t -> bytes

  val with_scratch : (t -> unit) -> bytes
  (** [with_scratch f] hands [f] a cleared, domain-local scratch writer
      and returns a fresh copy of what [f] wrote — the allocation-free
      fast path for per-frame encoders. Not reentrant: [f] must not
      itself call [with_scratch]. *)
end

(** Cursor-based reader over immutable bytes. *)
module R : sig
  type t

  val of_bytes : bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val varint : t -> int
  val bytes : t -> int -> bytes
  val bytes_lp : t -> bytes
  val string_lp : t -> string
  val remaining : t -> int
  val at_end : t -> bool
  val expect_end : t -> unit
  (** @raise Malformed if trailing bytes remain. *)
end

val hex : bytes -> string
(** Lowercase hex rendering, for logs and tests. *)

val of_hex : string -> bytes
(** Inverse of {!hex}. @raise Malformed on odd length or non-hex input. *)
