(* Array.init / List.init apply their closure in an order the language
   does not specify. Most call sites in this tree pass closures that
   draw from an RNG or advance a codec reader, where a different
   application order silently produces different (but plausible)
   values. These variants pin ascending order. *)

let array n f =
  if n < 0 then invalid_arg "Init.array: negative length";
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      Array.unsafe_set a i (f i)
    done;
    a
  end

let list n f =
  if n < 0 then invalid_arg "Init.list: negative length";
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []
