(** Descriptive statistics and confidence intervals.

    The paper reports "average latency ± confidence interval" at a 95%
    confidence level over 50 repetitions; this module provides exactly
    that computation (Student-t interval on the sample mean), plus the
    summaries used by the wider benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  ci95 : float;    (** half-width of the 95% confidence interval *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** [summarize xs] computes all summary statistics of the sample (the
    order statistics share a single sorted copy of the data).
    @raise Invalid_argument on an empty sample or a sample containing
    NaN. *)

val mean : float list -> float
val stddev : float list -> float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], linear interpolation.
    Sorts with [Float.compare].
    @raise Invalid_argument on an empty sample, a sample containing
    NaN, or [p] outside [\[0,1\]]. *)

val ci95_halfwidth : float list -> float
(** Half width of the 95% two-sided Student-t confidence interval for the
    mean. Returns 0 for samples of size < 2. *)

val t_critical_95 : int -> float
(** [t_critical_95 df] is the two-sided 97.5% quantile of Student's t
    distribution with [df] degrees of freedom (tabulated, interpolated,
    asymptotic 1.96 for large [df]). *)

(** Online accumulator (Welford) for streaming measurements. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end

(** Fixed-bin histogram over a closed range; used for phase-count and
    round-count distributions. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val counts : t -> int array
  val total : t -> int
  val render : t -> width:int -> string
  (** ASCII rendering, one line per bin. *)
end
