(** ASCII table rendering in the style of the paper's Tables 1–3. *)

type align = Left | Right | Center

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** [render ~header ~rows ()] lays out a boxed table with padded,
    aligned columns. [align] defaults to left for the first column and
    right for the rest. Rows shorter than the header are padded with
    empty cells. *)

val latency_cell : mean:float -> ci:float -> string
(** Formats "mean ± ci" in milliseconds with two decimals, matching the
    paper's cell format. *)
