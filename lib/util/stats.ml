type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

(* Two-sided 95% critical values of Student's t, df = 1..30, then selected
   larger dfs; linear interpolation between table points, 1.96 beyond. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 df =
  if df <= 0 then invalid_arg "Stats.t_critical_95: df must be positive";
  if df <= 30 then t_table.(df - 1)
  else if df <= 40 then 2.042 +. ((2.021 -. 2.042) *. float_of_int (df - 30) /. 10.0)
  else if df <= 60 then 2.021 +. ((2.000 -. 2.021) *. float_of_int (df - 40) /. 20.0)
  else if df <= 120 then 2.000 +. ((1.980 -. 2.000) *. float_of_int (df - 60) /. 60.0)
  else 1.960

let ci95_halfwidth xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else t_critical_95 (n - 1) *. stddev xs /. sqrt (float_of_int n)

(* Shared by percentile and summarize: one NaN check, one sort. The
   polymorphic [compare] this replaces both boxed every element and
   ordered [nan] inconsistently, silently corrupting percentiles of any
   sample containing one. *)
let sorted_array xs =
  let a = Array.of_list xs in
  Array.iter (fun x -> if Float.is_nan x then invalid_arg "Stats: NaN in sample") a;
  Array.sort Float.compare a;
  a

let percentile_sorted a p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let n = Array.length a in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then a.(lo)
  else
    let w = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. w)) +. (a.(hi) *. w)

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ -> percentile_sorted (sorted_array xs) p

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      let a = sorted_array xs in
      {
        count = Array.length a;
        mean = mean xs;
        stddev = stddev xs;
        ci95 = ci95_halfwidth xs;
        min = a.(0);
        max = a.(Array.length a - 1);
        median = percentile_sorted a 0.5;
        p90 = percentile_sorted a 0.9;
        p99 = percentile_sorted a 0.99;
      }

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let idx =
      if x <= t.lo then 0
      else if x >= t.hi then bins - 1
      else int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins)
    in
    let idx = min (bins - 1) (max 0 idx) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let render t ~width =
    let bins = Array.length t.counts in
    let peak = Array.fold_left max 1 t.counts in
    let buf = Buffer.create 256 in
    for i = 0 to bins - 1 do
      let binlo = t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int bins) in
      let binhi = t.lo +. ((t.hi -. t.lo) *. float_of_int (i + 1) /. float_of_int bins) in
      let bar = t.counts.(i) * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%8.2f, %8.2f) %6d %s\n" binlo binhi t.counts.(i)
           (String.make bar '#'))
    done;
    Buffer.contents buf
end
