exception Truncated
exception Malformed of string

module W = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity

  let u8 t v =
    if v < 0 || v > 0xFF then raise (Malformed "u8 out of range");
    Buffer.add_char t (Char.chr v)

  let u16 t v =
    if v < 0 || v > 0xFFFF then raise (Malformed "u16 out of range");
    Buffer.add_char t (Char.chr (v land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 8) land 0xFF))

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then raise (Malformed "u32 out of range");
    for i = 0 to 3 do
      Buffer.add_char t (Char.chr ((v lsr (8 * i)) land 0xFF))
    done

  let u64 t v =
    for i = 0 to 7 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
    done

  let varint t v =
    if v < 0 then raise (Malformed "varint must be non-negative");
    let rec go v =
      if v < 0x80 then Buffer.add_char t (Char.chr v)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
        go (v lsr 7)
      end
    in
    go v

  let bytes t b = Buffer.add_bytes t b

  let bytes_lp t b =
    u32 t (Bytes.length b);
    Buffer.add_bytes t b

  let string_lp t s = bytes_lp t (Bytes.of_string s)
  let length t = Buffer.length t
  let contents t = Buffer.to_bytes t

  (* One scratch buffer per domain: encoders on the hot path reuse it
     instead of allocating a fresh Buffer per frame. The callback must
     fully consume the writer before returning — nesting [with_scratch]
     inside its own callback would corrupt the outer encode. *)
  let scratch : Buffer.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Buffer.create 256)

  let with_scratch f =
    let b = Domain.DLS.get scratch in
    Buffer.clear b;
    f b;
    Buffer.to_bytes b
end

module R = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes buf = { buf; pos = 0 }

  let need t n = if t.pos + n > Bytes.length t.buf then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let u64 t =
    let r = ref 0L in
    for i = 0 to 7 do
      r := Int64.logor !r (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    !r

  let varint t =
    let rec go shift acc =
      if shift > 56 then raise (Malformed "varint too long");
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bytes t n =
    if n < 0 then raise (Malformed "negative length");
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let bytes_lp t =
    let n = u32 t in
    bytes t n

  let string_lp t = Bytes.to_string (bytes_lp t)
  let remaining t = Bytes.length t.buf - t.pos
  let at_end t = remaining t = 0
  let expect_end t = if not (at_end t) then raise (Malformed "trailing bytes")
end

let hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digit v = if v < 10 then Char.chr (Char.code '0' + v) else Char.chr (Char.code 'a' + v - 10) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xF))
  done;
  Bytes.to_string out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Malformed "odd hex length");
  let value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Malformed "non-hex character")
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i (Char.chr ((value s.[2 * i] lsl 4) lor value s.[(2 * i) + 1]))
  done;
  out
