(** Deterministic pseudo-random number generation.

    The implementation is xoshiro256** seeded through splitmix64. Every
    source of nondeterminism in the repository (local coins, network loss,
    backoff slots, key generation) draws from an explicitly threaded
    generator, so a whole experiment is a pure function of its seed. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator from a 64-bit seed. Distinct seeds
    yield statistically independent streams. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer: a bijective 64-bit avalanche. *)

val derive : base:int64 -> int list -> int64
(** [derive ~base coords] hashes a list of integer coordinates (grid
    point, adversary index, repetition number, ...) into a seed,
    folding each coordinate through the splitmix64 finalizer. The
    result depends on every coordinate and on their order, so distinct
    grid points get uncorrelated seeds regardless of how the grid is
    enumerated — the property the parallel run pool relies on. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream. The two
    generators produce independent streams; used to give each simulated
    node its own source. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** [bits64 t] returns the next 64 uniformly distributed bits. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] returns an unbiased random boolean — the protocol's local
    coin primitive. *)

val coin : t -> int
(** [coin t] returns 0 or 1, each with probability 1/2. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] returns [true] with probability [p]. *)

val bytes : t -> int -> bytes
(** [bytes t len] returns [len] random bytes (used for secret keys). *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution; used for
    randomized inter-arrival jitter in workloads. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place uniformly (Fisher–Yates). *)
