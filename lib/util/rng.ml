type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a 64-bit seed into the four xoshiro words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* splitmix64 finalizer alone: a bijective avalanche over 64 bits. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let derive ~base coords =
  List.fold_left
    (fun acc c ->
      mix64 (Int64.add (Int64.logxor acc (Int64.of_int c)) 0x9E3779B97F4A7C15L))
    (mix64 base) coords

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t bound =
  (* 53 uniform mantissa bits. *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let coin t = if bool t then 1 else 0
let bernoulli t p = float t 1.0 < p

let bytes t len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let r = ref (bits64 t) in
    let n = min 8 (len - !i) in
    for j = 0 to n - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !r 0xFFL)));
      r := Int64.shift_right_logical !r 8
    done;
    i := !i + n
  done;
  b

let exponential t ~mean =
  let u = ref (float t 1.0) in
  while !u = 0.0 do u := float t 1.0 done;
  -.mean *. log !u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
