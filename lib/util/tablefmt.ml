type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render ?align ~header ~rows () =
  let ncols = List.length header in
  let rows =
    let normalize row =
      let len = List.length row in
      if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
    in
    List.map normalize rows
  in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths) ^ "+"
  in
  let format_row cells =
    let parts =
      List.map2
        (fun (w, a) c -> " " ^ pad a w c ^ " ")
        (List.combine widths aligns)
        cells
    in
    "|" ^ String.concat "|" parts ^ "|"
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (format_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (format_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let latency_cell ~mean ~ci = Printf.sprintf "%.2f ± %.2f" mean ci
